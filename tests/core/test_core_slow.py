"""Tests for CoreSlow (Algorithm 1 / Lemma 7)."""

import pytest

from repro.core import quality
from repro.core.core_slow import core_slow, core_slow_reference
from repro.core.existence import best_certified
from repro.errors import ShortcutError
from repro.graphs import generators, partitions
from repro.graphs.spanning_trees import SpanningTree


def _assert_matches_reference(topology, tree, partition, c, participating=None):
    outcome = core_slow(topology, tree, partition, c, participating=participating)
    ref_map, ref_unusable = core_slow_reference(
        tree, partition, c, participating=participating
    )
    got = {e: tuple(sorted(p)) for e, p in outcome.shortcut.edge_map.items()}
    assert got == dict(ref_map)
    assert outcome.unusable == ref_unusable
    return outcome


def test_matches_reference_voronoi(grid6, grid6_tree, grid6_voronoi):
    _assert_matches_reference(grid6, grid6_tree, grid6_voronoi, 3)


def test_matches_reference_rows(grid6, grid6_tree, grid6_rows):
    _assert_matches_reference(grid6, grid6_tree, grid6_rows, 2)


def test_matches_reference_with_participation(grid6, grid6_tree, grid6_voronoi):
    keep = {0, 2, 4}
    outcome = _assert_matches_reference(
        grid6, grid6_tree, grid6_voronoi, 3, participating=keep
    )
    for i in range(grid6_voronoi.size):
        if i not in keep:
            assert not outcome.shortcut.subgraph(i)


def test_congestion_at_most_2c(grid6, grid6_tree, grid6_voronoi):
    for c in (1, 2, 4):
        outcome = core_slow(grid6, grid6_tree, grid6_voronoi, c)
        assert quality.shortcut_congestion(outcome.shortcut) <= 2 * c


def test_lemma7_half_good(grid6, grid6_tree):
    """With certified (c, b), at least N/2 parts get block <= 3b."""
    for partition in (
        partitions.voronoi(grid6, 6, seed=1),
        partitions.grid_rows(6, 6),
        partitions.voronoi(grid6, 12, seed=2),
    ):
        point = best_certified(grid6_tree, partition)
        outcome = core_slow(grid6, grid6_tree, partition, point.congestion)
        counts = quality.block_counts(outcome.shortcut)
        good = sum(1 for count in counts if count <= 3 * point.block)
        assert good >= partition.size / 2


def test_round_bound(grid6, grid6_tree, grid6_rows):
    c = 3
    outcome = core_slow(grid6, grid6_tree, grid6_rows, c)
    # Each level streams at most 2c+1 messages: O(D * c).
    assert outcome.rounds <= (grid6_tree.height + 1) * (2 * c + 2)


def test_rejects_c_below_one(grid6, grid6_tree, grid6_voronoi):
    with pytest.raises(ShortcutError):
        core_slow(grid6, grid6_tree, grid6_voronoi, 0)


def test_huge_c_gives_full_ancestors(grid6, grid6_tree, grid6_voronoi):
    from repro.core.existence import full_ancestor_shortcut

    outcome = core_slow(grid6, grid6_tree, grid6_voronoi, 50)
    full = full_ancestor_shortcut(grid6_tree, grid6_voronoi)
    assert not outcome.unusable
    for i in range(grid6_voronoi.size):
        assert outcome.shortcut.subgraph(i) == full.subgraph(i)


def test_blocks_always_intersect_parts(grid6, grid6_tree, grid6_voronoi):
    """CoreSlow's assignments always touch the owning part (the
    'every component is a block component' structural property)."""
    outcome = core_slow(grid6, grid6_tree, grid6_voronoi, 2)
    for i in range(grid6_voronoi.size):
        # block_components drops non-intersecting components, so the
        # union of block nodes must cover all assigned edges.
        blocks = quality.block_components(outcome.shortcut, i)
        covered = set()
        for block in blocks:
            covered |= block.nodes
        for u, v in outcome.shortcut.subgraph(i):
            assert u in covered and v in covered


def test_unusable_edges_unassigned(grid6, grid6_tree):
    partition = partitions.voronoi(grid6, 12, seed=5)
    outcome = core_slow(grid6, grid6_tree, partition, 1)
    for edge in outcome.unusable:
        assert edge not in outcome.shortcut.edge_map


def test_deterministic_across_seeds(grid6, grid6_tree, grid6_voronoi):
    a = core_slow(grid6, grid6_tree, grid6_voronoi, 2, seed=1)
    b = core_slow(grid6, grid6_tree, grid6_voronoi, 2, seed=99)
    assert a.shortcut.edge_map == b.shortcut.edge_map


def test_on_path_topology():
    path = generators.path(12)
    tree = SpanningTree.bfs(path, 0)
    partition = partitions.voronoi(path, 3, seed=1)
    _assert_matches_reference(path, tree, partition, 2)
