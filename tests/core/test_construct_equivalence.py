"""Differential conformance: direct construction kernels vs simulation.

Every test runs the same construction in ``mode="simulate"`` and
``mode="direct"`` and asserts the observable outcome is bit-for-bit
identical: shortcut edge maps, unusable sets, verification counts,
``good_history``, iteration counts, and doubling trials.  The analytic
round ledger is cross-checked against the simulated engines' actual
counts: the share-randomness and core phases must match *exactly*
(their models are closed forms of the streaming recurrences), and the
Lemma 3 verification model must dominate the simulated partwise
totals.  This suite is what licenses direct mode for the large-scale
experiments — exactly as the engine-equivalence suite licenses the
batched engine.
"""

import pytest

from repro.congest.topology import Topology
from repro.core.core_fast import core_fast
from repro.core.core_slow import core_slow
from repro.core.doubling import find_shortcut_doubling
from repro.core.existence import best_certified
from repro.core.find_shortcut import find_shortcut
from repro.core.verification import verification
from repro.errors import ConstructionFailedError
from repro.graphs import generators, partitions
from repro.graphs.spanning_trees import SpanningTree

MODES = ("simulate", "direct")


def _instances():
    grid = generators.grid(6, 6)
    torus = generators.torus(5, 5)
    hub = generators.cycle_with_hub(48, 8)
    instances = {
        "grid": (grid, partitions.voronoi(grid, 6, seed=3)),
        "torus": (torus, partitions.voronoi(torus, 5, seed=2)),
        "hub": (hub, partitions.cycle_arcs(48, 8, extra_nodes=1)),
    }
    if generators.geometry_available():
        # The delaunay family needs the optional geometry extra; the
        # pool (and its parametrized tests) shrinks without it.
        delaunay = generators.delaunay(40, 3)
        instances["delaunay"] = (delaunay, partitions.voronoi(delaunay, 6, seed=5))
    return instances


INSTANCES = _instances()


def _ledger_by_phase(ledger):
    """Aggregate (rounds, messages) per phase-name prefix."""
    totals = {}
    for record in ledger.records:
        key = record.name.split("#")[0].split("/")[0]
        rounds, messages = totals.get(key, (0, 0))
        totals[key] = (rounds + record.rounds, messages + record.messages)
    return totals


def _assert_ledger_crosscheck(simulate_ledger, direct_ledger):
    """The analytic model vs the simulated engines' actual counts."""
    simulated = _ledger_by_phase(simulate_ledger)
    direct = _ledger_by_phase(direct_ledger)
    # Exact phases: closed forms of the streaming recurrences.
    for phase in ("share-randomness", "core-slow", "core-fast", "termination-check"):
        if phase in simulated or phase in direct:
            assert direct.get(phase) == simulated.get(phase), phase
    # The Lemma 3 model must dominate the simulated partwise totals.
    actual_rounds = sum(
        value[0] for key, value in simulated.items() if key == "partwise"
    )
    actual_messages = sum(
        value[1] for key, value in simulated.items() if key == "partwise"
    )
    model_rounds, model_messages = direct.get("verification", (0, 0))
    assert model_rounds >= actual_rounds
    assert model_messages >= actual_messages
    # Barrier accounting is identical in both modes.
    assert (
        direct_ledger.total_rounds - direct_ledger.simulated_rounds
        == simulate_ledger.total_rounds - simulate_ledger.simulated_rounds
    )


@pytest.mark.parametrize("name", sorted(INSTANCES))
@pytest.mark.parametrize("seed", [0, 7])
def test_core_slow_direct_identical(name, seed):
    topology, partition = INSTANCES[name]
    tree = SpanningTree.bfs(topology, 0)
    point = best_certified(tree, partition)
    outcomes = {
        mode: core_slow(
            topology, tree, partition, point.congestion, seed=seed, mode=mode
        )
        for mode in MODES
    }
    simulate, direct = outcomes["simulate"], outcomes["direct"]
    assert direct.shortcut.edge_map == simulate.shortcut.edge_map
    assert direct.unusable == simulate.unusable
    assert direct.rounds == simulate.rounds
    assert direct.messages == simulate.messages


@pytest.mark.parametrize("name", sorted(INSTANCES))
@pytest.mark.parametrize("shared_seed", [1, 99, 12345])
def test_core_fast_direct_identical(name, shared_seed):
    topology, partition = INSTANCES[name]
    tree = SpanningTree.bfs(topology, 0)
    point = best_certified(tree, partition)
    participating = set(range(0, partition.size, 2)) or None
    outcomes = {
        mode: core_fast(
            topology, tree, partition, point.congestion,
            shared_seed=shared_seed, participating=participating, mode=mode,
        )
        for mode in MODES
    }
    simulate, direct = outcomes["simulate"], outcomes["direct"]
    assert direct.shortcut.edge_map == simulate.shortcut.edge_map
    assert direct.unusable == simulate.unusable
    assert direct.rounds == simulate.rounds
    assert direct.messages == simulate.messages


@pytest.mark.parametrize("name", sorted(INSTANCES))
@pytest.mark.parametrize("b_limit", [0, 1, 2, 5])
def test_verification_direct_identical(name, b_limit):
    topology, partition = INSTANCES[name]
    tree = SpanningTree.bfs(topology, 0)
    point = best_certified(tree, partition)
    outcome = core_slow(topology, tree, partition, point.congestion, seed=17)
    verdicts = {
        mode: verification(
            topology, outcome.shortcut, b_limit, seed=19, mode=mode
        )
        for mode in MODES
    }
    assert verdicts["direct"].counts == verdicts["simulate"].counts
    assert verdicts["direct"].good_parts == verdicts["simulate"].good_parts


def test_verification_direct_identical_on_disconnected_part():
    """A disconnected part never gets a verdict — in either mode."""
    topology = INSTANCES["grid"][0]
    # Part 0 is two opposite corners: G[P_0] is disconnected, so the
    # supergraph protocol cannot deliver one consistent verdict.
    partition = partitions.Partition(
        topology.n, [[0, 35], [1, 2, 3], [6, 12, 18], [30, 31, 32]]
    )
    tree = SpanningTree.bfs(topology, 0)
    outcome = core_slow(topology, tree, partition, 2, seed=23)
    for b_limit in (1, 2, 4):
        verdicts = {
            mode: verification(
                topology, outcome.shortcut, b_limit, seed=29, mode=mode
            )
            for mode in MODES
        }
        assert verdicts["direct"].counts == verdicts["simulate"].counts
        assert verdicts["direct"].good_parts == verdicts["simulate"].good_parts


@pytest.mark.parametrize("name", sorted(INSTANCES))
@pytest.mark.parametrize("use_fast", [True, False], ids=["fast", "slow"])
def test_find_shortcut_direct_identical(name, use_fast):
    topology, partition = INSTANCES[name]
    tree = SpanningTree.bfs(topology, 0)
    point = best_certified(tree, partition)
    results = {
        mode: find_shortcut(
            topology, tree, partition, point.congestion, point.block,
            use_fast=use_fast, seed=11, mode=mode,
        )
        for mode in MODES
    }
    simulate, direct = results["simulate"], results["direct"]
    assert direct.shortcut.edge_map == simulate.shortcut.edge_map
    assert direct.good_history == simulate.good_history
    assert direct.iterations == simulate.iterations
    _assert_ledger_crosscheck(simulate.ledger, direct.ledger)


@pytest.mark.parametrize("name", sorted(INSTANCES))
def test_doubling_direct_identical(name):
    topology, partition = INSTANCES[name]
    tree = SpanningTree.bfs(topology, 0)
    results = {
        mode: find_shortcut_doubling(topology, tree, partition, seed=61, mode=mode)
        for mode in MODES
    }
    simulate, direct = results["simulate"], results["direct"]
    assert [t.signature for t in direct.trials] == [
        t.signature for t in simulate.trials
    ]
    # Per-rung ledger deltas are per-mode costs; each mode's rungs must
    # still sum to its own ledger totals.
    for outcome in (simulate, direct):
        assert sum(t.rounds for t in outcome.trials) <= outcome.ledger.total_rounds
    assert direct.result.shortcut.edge_map == simulate.result.shortcut.edge_map
    assert direct.result.good_history == simulate.result.good_history
    _assert_ledger_crosscheck(simulate.ledger, direct.ledger)


def test_doubling_direct_identical_without_warm_start():
    topology, partition = INSTANCES["grid"]
    tree = SpanningTree.bfs(topology, 0)
    results = {
        mode: find_shortcut_doubling(
            topology, tree, partition, seed=61, mode=mode, warm_start=False
        )
        for mode in MODES
    }
    assert [t.signature for t in results["direct"].trials] == [
        t.signature for t in results["simulate"].trials
    ]
    assert (
        results["direct"].result.shortcut.edge_map
        == results["simulate"].result.shortcut.edge_map
    )


def test_failure_state_identical():
    """Both modes fail identically and carry the same partial state."""
    topology = INSTANCES["grid"][0]
    partition = partitions.grid_rows(6, 6)
    tree = SpanningTree.bfs(topology, 0)
    errors = {}
    for mode in MODES:
        with pytest.raises(ConstructionFailedError) as info:
            find_shortcut(
                topology, tree, partition, 1, 1,
                max_iterations=2, seed=3, mode=mode,
            )
        errors[mode] = info.value
    simulate, direct = errors["simulate"], errors["direct"]
    assert direct.iterations == simulate.iterations == 2
    assert direct.state.remaining == simulate.state.remaining
    assert direct.state.good_history == simulate.state.good_history
    assert (
        direct.state.shortcut.edge_map == simulate.state.shortcut.edge_map
    )
