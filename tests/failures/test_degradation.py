"""Edge-case tests for the degradation measurement.

The main-line sweeps live in E19 and the property suite; these pin the
boundary shapes: a scenario failing *every* edge, a survivor in which
no original part stays intact, and SRLG draws that take down the whole
spanning tree.
"""

import pytest

from repro.analysis.instances import InstanceSpec, clear_instance_cache, hydrate
from repro.failures.degradation import intact_baseline, measure_degradation
from repro.failures.repair import split_partition
from repro.failures.scenarios import FailureScenario, sample_srlg
from repro.graphs.csr import bfs_spanning_tree


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_instance_cache()
    yield
    clear_instance_cache()


@pytest.fixture(scope="module")
def instance():
    return hydrate(
        InstanceSpec(
            "grid", (4, 4), weights=("unique", 3),
            partition=("voronoi", 4, 1),
        )
    )


@pytest.fixture(scope="module")
def baseline(instance):
    return intact_baseline(
        instance.topology, instance.partition,
        seed=0, mode="direct", backend="direct",
    )


def measure(instance, scenario, baseline):
    return measure_degradation(
        instance.topology, instance.partition, scenario, baseline,
        seed=0, mode="direct", backends=("direct",), with_dilation=False,
    )


def test_all_edges_failed(instance, baseline):
    topology = instance.topology
    scenario = FailureScenario(
        edges=tuple(sorted(topology.edges)), kind="kwise", label="all-edges"
    )
    record = measure(instance, scenario, baseline)
    # Every node is its own component; there is no shortcut to measure.
    assert not record.connected
    assert record.components == topology.n
    assert record.connectivity_components == topology.n
    assert record.congestion_delta is None
    assert record.block_delta is None
    assert record.construction_rounds_delta is None
    # The MST forest over an edgeless survivor is empty.
    assert record.mst_weight_delta == -baseline.mst_weight


def test_survivor_with_zero_parts_intact():
    # Row parts (paths) all shatter when one inner edge of each fails;
    # the column edges keep the survivor connected.
    rows = hydrate(
        InstanceSpec(
            "grid", (4, 4), weights=("unique", 3), partition=("rows", 4, 4)
        )
    )
    topology, partition = rows.topology, rows.partition
    base = intact_baseline(
        topology, partition, seed=0, mode="direct", backend="direct"
    )
    failed = []
    for index, part in enumerate(partition.parts):
        nodes = set(part)
        inner = sorted(
            edge for edge in topology.edges
            if edge[0] in nodes and edge[1] in nodes
        )
        assert inner, "fixture partition has a single-node part"
        # Stagger the failed position per row: cutting the same column
        # in every row would split the grid in two.
        failed.append(inner[index % len(inner)])
    scenario = FailureScenario(
        edges=tuple(sorted(set(failed))), kind="kwise", label="shatter-all"
    )
    survivor = topology.delete_edges(scenario.edges)
    assert len(survivor.components()) == 1, "fixture no longer connected"
    new_partition, origin = split_partition(survivor, partition)
    intact = sum(
        1 for old in range(partition.size) if origin.count(old) == 1
    )
    assert intact == 0
    assert new_partition.size == 2 * partition.size
    record = measure(rows, scenario, base)
    # The shattered partition still constructs and measures cleanly.
    assert record.connected
    assert record.components == 1
    assert record.congestion_delta is not None
    assert record.block_delta is not None
    assert record.mst_weight_delta >= 0


def test_srlg_covering_the_whole_spanning_tree(instance, baseline):
    topology = instance.topology
    tree = bfs_spanning_tree(topology, 0)
    # One risk group per tree node's parent edge; probability 1 fails
    # them all: the scenario takes down the entire spanning tree.
    groups = tuple((edge,) for edge in tree.edges)
    assert len(groups) == topology.n - 1
    scenarios = sample_srlg(topology, groups, 1, 1.0, seed=0)
    (scenario,) = scenarios
    assert set(scenario.edges) == {
        tuple(sorted(edge)) for edge in tree.edges
    }
    record = measure(instance, scenario, baseline)
    # Losing a spanning tree does not disconnect a 4x4 grid everywhere,
    # but whatever the survivor looks like, the record must be
    # internally consistent.
    assert record.components == record.connectivity_components
    if record.connected:
        assert record.congestion_delta is not None
    else:
        assert record.components > 1
        assert record.congestion_delta is None
