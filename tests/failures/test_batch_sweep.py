"""Differential suite: batched failure sweeps vs the per-scenario loop.

The same licensing discipline as the batch construction kernels: every
``batch="vector"`` sweep — survivor derivation, degradation
measurement, repair-vs-rebuild — must reproduce the per-scenario loop
**bit-for-bit**, including error identity on invalid scenarios.
"""

import pytest

from repro.analysis.instances import InstanceSpec, hydrate
from repro.congest.topology import TopologyError
from repro.core.doubling import find_shortcut_doubling
from repro.errors import ShortcutError  # noqa: F401 - parity with sibling suites
from repro.failures import (
    enumerate_kwise,
    intact_baseline,
    repair_vs_rebuild_batch,
    sample_bernoulli,
    sample_srlg,
    scenarios_batch,
    srlg_groups,
    survivors_batch,
)
from repro.failures.scenarios import FailureScenario
from repro.graphs.batch_csr import numpy_available
from repro.graphs.csr import bfs_spanning_tree

pytestmark = pytest.mark.skipif(
    not numpy_available(),
    reason="batched sweeps need the fast-math extra (numpy)",
)

FAMILIES = [
    (InstanceSpec("grid", (6, 6), partition=("voronoi", 6, 1)),
     "grid", {"rows": 6, "cols": 6}),
    (InstanceSpec("torus", (6, 6), partition=("voronoi", 6, 2)),
     "torus", {"rows": 6, "cols": 6}),
    (InstanceSpec("hub", (48, 8), partition=("arcs", 48, 8, 1)),
     "hub", {"n_cycle": 48, "spoke_every": 8}),
]


def _scenario_grid(topology, family, params):
    groups = srlg_groups(topology, family, **params)
    return (
        enumerate_kwise(topology, 1, limit=2, seed=19)
        + enumerate_kwise(topology, 2, limit=2, seed=20)
        + sample_bernoulli(topology, 2, min(0.25, 1.5 / topology.m), seed=21)
        + sample_srlg(
            topology, groups, 2, min(0.5, 1.0 / max(1, len(groups))), seed=22
        )
    )


@pytest.fixture(scope="module", params=range(len(FAMILIES)), ids=lambda i: FAMILIES[i][1])
def family(request):
    spec, name, params = FAMILIES[request.param]
    instance = hydrate(spec)
    # Distinct weights so weighted survivors must carry them exactly.
    topology = instance.topology.with_weights(
        {e: (i * 7919) % 97 + 1 for i, e in enumerate(instance.topology.edges)}
    )
    scenarios = _scenario_grid(topology, name, params)
    return topology, instance.partition, scenarios


def test_survivors_identical(family):
    topology, _partition, scenarios = family
    loop = survivors_batch(topology, scenarios, batch="loop")
    vector = survivors_batch(topology, scenarios, batch="vector")
    assert len(loop) == len(vector) == len(scenarios)
    for reference, batched in zip(loop, vector):
        assert batched.n == reference.n
        assert batched.edges == reference.edges
        assert [batched.weight(*e) for e in batched.edges] == [
            reference.weight(*e) for e in reference.edges
        ]


def test_survivors_empty_scenario_identical(family):
    topology, _partition, _scenarios = family
    nothing = FailureScenario(edges=(), kind="kwise", label="k0")
    loop = survivors_batch(topology, [nothing], batch="loop")
    vector = survivors_batch(topology, [nothing], batch="vector")
    assert vector[0].edges == loop[0].edges == topology.edges


def test_survivors_non_edge_error_identical(family):
    topology, _partition, _scenarios = family
    bogus = FailureScenario(
        edges=((0, topology.n + 5),), kind="kwise", label="bogus"
    )
    with pytest.raises(TopologyError) as loop_error:
        survivors_batch(topology, [bogus], batch="loop")
    with pytest.raises(TopologyError) as vector_error:
        survivors_batch(topology, [bogus], batch="vector")
    assert str(vector_error.value) == str(loop_error.value)


def test_scenario_sweep_records_identical(family):
    topology, partition, scenarios = family
    baseline = intact_baseline(topology, partition, seed=5, mode="direct")
    loop = scenarios_batch(
        topology, partition, scenarios, baseline,
        seed=5, mode="direct", batch="loop",
    )
    vector = scenarios_batch(
        topology, partition, scenarios, baseline,
        seed=5, mode="direct", batch="vector",
    )
    assert vector == loop
    # Disconnected survivors are first-class rows in both paths.
    if any(not record.connected for record in loop):
        assert [r.connected for r in vector] == [r.connected for r in loop]


def test_scenario_sweep_without_dilation_identical(family):
    topology, partition, scenarios = family
    baseline = intact_baseline(topology, partition, seed=5, mode="direct")
    loop = scenarios_batch(
        topology, partition, scenarios[:4], baseline,
        seed=5, mode="direct", with_dilation=False, batch="loop",
    )
    vector = scenarios_batch(
        topology, partition, scenarios[:4], baseline,
        seed=5, mode="direct", with_dilation=False, batch="vector",
    )
    assert vector == loop


def test_repair_vs_rebuild_identical(family):
    topology, partition, scenarios = family
    tree = bfs_spanning_tree(topology, 0)
    old = find_shortcut_doubling(topology, tree, partition, seed=5, mode="direct")
    survivors = survivors_batch(topology, scenarios, batch="loop")
    failure_sets = [
        scenario.edges
        for scenario, survivor in zip(scenarios, survivors)
        if len(survivor.components()) == 1
    ][:4]
    assert failure_sets
    loop = repair_vs_rebuild_batch(
        topology, old, failure_sets, seed=5, mode="direct", batch="loop"
    )
    vector = repair_vs_rebuild_batch(
        topology, old, failure_sets, seed=5, mode="direct", batch="vector"
    )
    for reference, batched in zip(loop, vector):
        for side in ("repair", "rebuild"):
            a = getattr(reference, side)
            b = getattr(batched, side)
            assert b.trials == a.trials
            assert b.shortcut.subgraphs == a.shortcut.subgraphs
            assert b.ledger == a.ledger
            assert b.frozen_parts == a.frozen_parts
            assert b.part_origin == a.part_origin
            assert b.tree_rebuilt == a.tree_rebuilt
        assert batched.rounds_speedup == reference.rounds_speedup
