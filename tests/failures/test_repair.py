"""Incremental repair vs full rebuild: differential ==-verification."""

import pytest

from repro.core.doubling import find_shortcut_doubling
from repro.errors import ShortcutError, TopologyError
from repro.failures.repair import (
    assert_valid,
    patch_spanning_tree,
    rebuild_shortcut,
    repair_shortcut,
    repair_vs_rebuild,
    split_partition,
)
from repro.failures.scenarios import enumerate_kwise, sample_bernoulli
from repro.graphs import generators, partitions
from repro.graphs.spanning_trees import SpanningTree


def _instances():
    cases = [
        ("grid", generators.grid(5, 5), 5),
        ("torus", generators.torus(4, 4), 4),
        ("hub", generators.cycle_with_hub(32, 4), 4),
    ]
    if generators.geometry_available():
        cases.append(("delaunay", generators.delaunay(25, 3), 5))
    return cases


def _failure_suite(topology):
    """k=1, k=2 and one Bernoulli draw — the failure-rate axis."""
    suite = list(enumerate_kwise(topology, 1, limit=2, seed=11))
    suite += enumerate_kwise(topology, 2, limit=2, seed=12)
    suite += sample_bernoulli(topology, 1, 2.0 / topology.m, seed=13)
    return suite


@pytest.mark.parametrize(
    "name,topology,n_parts",
    [pytest.param(*case, id=case[0]) for case in _instances()],
)
def test_repair_matches_rebuild_across_families(name, topology, n_parts):
    partition = partitions.voronoi(topology, n_parts, seed=7)
    tree = SpanningTree.bfs(topology, 0)
    old = find_shortcut_doubling(topology, tree, partition, seed=3, mode="direct")
    compared = 0
    for scenario in _failure_suite(topology):
        survivor = topology.delete_edges(scenario.edges)
        if not survivor.is_connected:
            with pytest.raises(TopologyError, match="components"):
                repair_shortcut(topology, old, scenario.edges, mode="direct")
            continue
        comparison = repair_vs_rebuild(
            topology, old, scenario.edges, seed=3, mode="direct"
        )
        compared += 1
        repaired = comparison.repair
        # ==-validity of both sides is asserted inside repair_vs_rebuild
        # (validate_in + full Verification sweep at 3b); on top, repair
        # must never have re-run a part it promised to keep frozen.
        old_subgraphs = {
            old.result.shortcut.subgraph(origin)
            for origin in range(partition.size)
        }
        for part in repaired.frozen_parts:
            assert repaired.shortcut.subgraph(part) in old_subgraphs
        assert repaired.frozen_parts | repaired.repaired_parts == set(
            range(repaired.partition.size)
        )
        assert comparison.rounds_speedup > 0
    assert compared > 0, f"no connected survivor in the {name} suite"


def test_repair_untouched_failure_freezes_everything():
    """A failed edge outside the tree and every H_i leaves nothing to
    repair: zero construction iterations, everything frozen."""
    topology = generators.torus(4, 4)
    partition = partitions.grid_rows(4, 4)
    tree = SpanningTree.bfs(topology, 0)
    old = find_shortcut_doubling(topology, tree, partition, seed=1, mode="direct")
    used = set(tree.edges)
    for part in range(partition.size):
        used |= old.result.shortcut.subgraph(part)
    # An intra-row non-tree edge: it is in no H_i (those are tree
    # edges) and a row of the torus is a cycle, so losing one internal
    # edge cannot split the part either.
    labels = partition.labels
    spare = next(
        (u, v)
        for u, v in topology.edges
        if (u, v) not in used and labels[u] == labels[v]
    )
    repaired = repair_shortcut(topology, old, [spare], mode="direct")
    assert repaired.repaired_parts == frozenset()
    assert not repaired.tree_rebuilt
    assert repaired.tree is tree or repaired.tree.edges == tree.edges
    assert_valid(repaired.survivor, repaired)


def test_repair_rejects_disconnecting_failures():
    topology = generators.path(6)
    partition = partitions.voronoi(topology, 2, seed=0)
    tree = SpanningTree.bfs(topology, 0)
    old = find_shortcut_doubling(topology, tree, partition, seed=0, mode="direct")
    with pytest.raises(TopologyError, match="2 components"):
        repair_shortcut(topology, old, [(2, 3)], mode="direct")
    with pytest.raises(TopologyError, match="component_subtopologies"):
        rebuild_shortcut(topology, old, [(2, 3)], mode="direct")


def test_repair_rejects_unknown_result_type():
    topology = generators.grid(3, 3)
    with pytest.raises(ShortcutError, match="DoublingResult"):
        repair_shortcut(topology, object(), [(0, 1)])


# ----------------------------------------------------------------------
# patch_spanning_tree
# ----------------------------------------------------------------------


def test_patch_identity_when_no_tree_edge_failed():
    topology = generators.grid(4, 4)
    tree = SpanningTree.bfs(topology, 0)
    non_tree = next(e for e in topology.edges if e not in tree.edges)
    survivor = topology.delete_edges([non_tree])
    patched, waves = patch_spanning_tree(survivor, tree, frozenset([non_tree]))
    assert patched is tree
    assert waves == 0


@pytest.mark.parametrize("kill", [1, 2, 3])
def test_patch_keeps_surviving_tree_edges(kill):
    topology = generators.grid(5, 5)
    tree = SpanningTree.bfs(topology, 0)
    failed = frozenset(sorted(tree.edges)[:: 7][:kill])
    survivor = topology.delete_edges(failed, require_connected=False)
    if not survivor.is_connected:
        pytest.skip("survivor disconnected for this cut")
    patched, waves = patch_spanning_tree(survivor, tree, failed)
    assert waves >= 1
    patched.validate_in(survivor)
    assert patched.root == tree.root
    # The incremental guarantee: every surviving old tree edge is still
    # a tree edge — only the failed ones were replaced.
    assert tree.edges - failed <= patched.edges
    assert len(patched.edges) == survivor.n - 1


def test_patch_raises_on_disconnected_survivor():
    topology = generators.path(5)
    tree = SpanningTree.bfs(topology, 0)
    failed = frozenset([(2, 3)])
    survivor = topology.delete_edges(failed, require_connected=False)
    with pytest.raises(TopologyError, match="disconnected"):
        patch_spanning_tree(survivor, tree, failed)


# ----------------------------------------------------------------------
# split_partition
# ----------------------------------------------------------------------


def test_split_partition_identity_on_valid_partition():
    topology = generators.grid(4, 4)
    partition = partitions.grid_rows(4, 4)
    new_partition, origin = split_partition(topology, partition)
    assert origin == tuple(range(partition.size))
    for part in range(partition.size):
        assert new_partition.members(part) == partition.members(part)


def test_split_partition_separates_broken_parts():
    topology = generators.grid(4, 4)
    partition = partitions.grid_rows(4, 4)
    # Cut row 0 (nodes 0..3) in the middle: part 0 splits in two.
    survivor = topology.delete_edges([(1, 2)], require_connected=False)
    new_partition, origin = split_partition(survivor, partition)
    assert new_partition.size == partition.size + 1
    assert origin.count(0) == 2
    assert origin.count(1) == 1
    pieces = [
        new_partition.members(i) for i, old in enumerate(origin) if old == 0
    ]
    assert sorted(map(sorted, pieces)) == [[0, 1], [2, 3]]
