"""Failure-scenario generation: determinism, validation, structure."""

import math

import pytest

from repro.errors import ReproError, TopologyError
from repro.failures.scenarios import (
    enumerate_kwise,
    node_srlg_groups,
    sample_bernoulli,
    sample_srlg,
    srlg_groups,
)
from repro.graphs import generators


@pytest.fixture
def grid4():
    return generators.grid(4, 4)


def test_kwise_exhaustive_covers_every_pair(grid4):
    scenarios = enumerate_kwise(grid4, 2)
    assert len(scenarios) == math.comb(grid4.m, 2)
    assert len({s.edges for s in scenarios}) == len(scenarios)
    for scenario in scenarios:
        assert scenario.kind == "kwise"
        assert scenario.size == 2
        assert list(scenario.edges) == sorted(scenario.edges)
        for edge in scenario.edges:
            assert grid4.has_edge(*edge)


def test_kwise_limit_is_deterministic_and_distinct(grid4):
    a = enumerate_kwise(grid4, 3, limit=7, seed=5)
    b = enumerate_kwise(grid4, 3, limit=7, seed=5)
    assert a == b
    assert len(a) == 7
    assert len({s.edges for s in a}) == 7
    other = enumerate_kwise(grid4, 3, limit=7, seed=6)
    assert {s.edges for s in other} != {s.edges for s in a}


def test_kwise_limit_above_binomial_is_exhaustive(grid4):
    assert len(enumerate_kwise(grid4, 1, limit=10_000)) == grid4.m


def test_kwise_rejects_bad_k(grid4):
    with pytest.raises(ReproError):
        enumerate_kwise(grid4, 0)
    with pytest.raises(ReproError):
        enumerate_kwise(grid4, grid4.m + 1)


def test_bernoulli_deterministic_and_nonempty(grid4):
    a = sample_bernoulli(grid4, 5, 0.1, seed=3)
    b = sample_bernoulli(grid4, 5, 0.1, seed=3)
    assert a == b
    assert all(s.size >= 1 for s in a)
    assert all(s.kind == "bernoulli" for s in a)


def test_bernoulli_per_edge_probability_override(grid4):
    doomed = grid4.edges[0]
    scenarios = sample_bernoulli(
        grid4, 4, 0.0, probabilities={doomed: 1.0}, seed=1
    )
    for scenario in scenarios:
        assert scenario.edges == (doomed,)


def test_bernoulli_rejects_nonedge_probability(grid4):
    with pytest.raises(TopologyError):
        sample_bernoulli(grid4, 1, 0.5, probabilities={(0, 15): 1.0})


def test_srlg_grid_groups_are_rows_and_columns(grid4):
    groups = srlg_groups(grid4, "grid", rows=4, cols=4)
    # 4 horizontal runs + 4 vertical runs.
    assert len(groups) == 8
    assert sorted(edge for group in groups for edge in group) == sorted(
        grid4.edges
    )


def test_srlg_hub_groups_spokes_and_arcs():
    topology = generators.cycle_with_hub(16, 4)
    groups = srlg_groups(topology, "hub", n_cycle=16, spoke_every=4)
    spokes = groups[0]
    assert all(16 in edge for edge in spokes)
    assert len(spokes) == 4


def test_srlg_unregistered_family_falls_back_to_nodes(grid4):
    assert srlg_groups(grid4, "no-such-family") == node_srlg_groups(grid4)
    assert srlg_groups(grid4) == node_srlg_groups(grid4)


def test_node_srlg_groups_are_incident_edges(grid4):
    groups = node_srlg_groups(grid4)
    # Every grid node has degree >= 2, so one group per node.
    assert len(groups) == grid4.n
    by_size = sorted(len(g) for g in groups)
    assert by_size[0] == 2 and by_size[-1] == 4


def test_sample_srlg_fails_whole_groups(grid4):
    groups = srlg_groups(grid4, "grid", rows=4, cols=4)
    scenarios = sample_srlg(grid4, groups, 3, probability=1.0, seed=2)
    for scenario in scenarios:
        assert set(scenario.edges) == set(grid4.edges)
    a = sample_srlg(grid4, groups, 3, probability=0.3, seed=4)
    b = sample_srlg(grid4, groups, 3, probability=0.3, seed=4)
    assert a == b
    for scenario in a:
        # Each failed group is contained wholesale.
        failed = set(scenario.edges)
        for group in groups:
            overlap = failed & set(group)
            assert overlap in (set(), set(group))


def test_sample_srlg_rejects_empty_groups(grid4):
    with pytest.raises(ReproError):
        sample_srlg(grid4, [], 1)
