"""Shared fixtures: small instances used across the test suite."""

from __future__ import annotations

import pytest

from repro.congest.topology import Topology
from repro.graphs import generators, partitions
from repro.graphs.spanning_trees import SpanningTree


@pytest.fixture
def path9() -> Topology:
    return generators.path(9)


@pytest.fixture
def grid6() -> Topology:
    return generators.grid(6, 6)


@pytest.fixture
def grid6_tree(grid6) -> SpanningTree:
    return SpanningTree.bfs(grid6, 0)


@pytest.fixture
def grid6_rows(grid6) -> partitions.Partition:
    return partitions.grid_rows(6, 6)


@pytest.fixture
def grid6_voronoi(grid6) -> partitions.Partition:
    return partitions.voronoi(grid6, 6, seed=3)


@pytest.fixture
def torus5() -> Topology:
    return generators.torus(5, 5)


@pytest.fixture
def hub_instance():
    topology = generators.cycle_with_hub(64, 8)
    partition = partitions.cycle_arcs(64, 8, extra_nodes=1)
    return topology, partition
