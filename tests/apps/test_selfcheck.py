"""Self-verifying applications: certificates, retries, declared failures.

Two layers under test.  The certificates
(:func:`~repro.apps.selfcheck.certify_mst` & co.) must accept exactly
the correct outputs and reject corrupted ones — they are what stands
between a fault-corrupted run and a silently wrong answer.  The
detect-and-retry driver (:func:`~repro.apps.selfcheck.run_verified`
and the ``verified_*`` wrappers) must recover under transport faults,
reseed between attempts, and raise a declared
:class:`~repro.errors.DetectedFailure` when no attempt certifies.
"""

import dataclasses

import pytest

from repro.apps.connectivity import connected_components
from repro.apps.leader_election import LeaderElectionResult
from repro.apps.mst import kruskal_reference, minimum_spanning_tree
from repro.apps.selfcheck import (
    VerifiedRun,
    certify_components,
    certify_leaders,
    certify_mst,
    run_verified,
    verified_connectivity,
    verified_leaders,
    verified_mst,
)
from repro.congest.faults import FaultPlan, get_default_faults
from repro.errors import DetectedFailure
from repro.graphs import generators, partitions
from repro.graphs.weights import weighted


@pytest.fixture(scope="module")
def wgrid():
    return weighted(generators.grid(4, 4), seed=1)


# ----------------------------------------------------------------------
# Certificates: accept the truth, reject corruption
# ----------------------------------------------------------------------


def test_certify_mst_accepts_correct_result(wgrid):
    result = minimum_spanning_tree(wgrid, seed=2)
    assert certify_mst(wgrid, result) == []


def test_certify_mst_rejects_corruptions(wgrid):
    result = minimum_spanning_tree(wgrid, seed=2)
    edges = sorted(result.edges)
    # Wrong weight claim.
    lying = dataclasses.replace(result, weight=result.weight + 1)
    assert any("weight" in p for p in certify_mst(wgrid, lying))
    # A non-edge smuggled in.
    fake = dataclasses.replace(
        result, edges=frozenset(edges[:-1]) | {(0, 15)}
    )
    assert any("not a graph edge" in p for p in certify_mst(wgrid, fake))
    # An edge swapped for a heavier one: wrong forest, wrong weight.
    missing = dataclasses.replace(result, edges=frozenset(edges[:-1]))
    assert any("components" in p for p in certify_mst(wgrid, missing))


def test_certify_components_accepts_and_rejects(wgrid):
    alive = [e for e in wgrid.edges if 0 not in e]  # isolates node 0
    result = connected_components(wgrid, alive, use_shortcuts=False)
    assert certify_components(wgrid, alive, result) == []
    bad_labels = dict(result.labels)
    bad_labels[0] = bad_labels[15]  # merges two components' labels
    corrupt = dataclasses.replace(result, labels=bad_labels)
    assert certify_components(wgrid, alive, corrupt)


def test_certify_leaders_accepts_and_rejects():
    topology = generators.grid(4, 4)
    partition = partitions.voronoi(topology, 4, seed=3)
    leaders = {i: min(partition.members(i)) for i in range(partition.size)}
    knowledge = {
        v: leaders[i]
        for i in range(partition.size)
        for v in partition.members(i)
    }
    good = LeaderElectionResult(leaders=leaders, knowledge=knowledge, rounds=1)
    assert certify_leaders(partition, good) == []
    wrong = LeaderElectionResult(
        leaders={**leaders, 0: max(partition.members(0))},
        knowledge=knowledge,
        rounds=1,
    )
    assert any("leader" in p for p in certify_leaders(partition, wrong))
    amnesiac = LeaderElectionResult(
        leaders=leaders, knowledge={**knowledge, 5: None}, rounds=1
    )
    assert any("knows" in p for p in certify_leaders(partition, amnesiac))


# ----------------------------------------------------------------------
# The retry driver
# ----------------------------------------------------------------------


def test_run_verified_retries_until_certified():
    plan = FaultPlan(seed=1, p_drop=0.5)
    seen_plans = []

    def run():
        seen_plans.append(get_default_faults())
        return len(seen_plans)

    outcome = run_verified(
        run,
        lambda value: [] if value >= 3 else [f"value {value} too small"],
        plan,
        max_attempts=4,
    )
    assert isinstance(outcome, VerifiedRun)
    assert outcome.value == 3 and outcome.attempts == 3
    assert len(outcome.reasons) == 2
    # Attempt 1 runs the plan verbatim; retries reseed it but keep the
    # fault mix.
    assert seen_plans[0] is plan
    assert {p.seed for p in seen_plans} == {p.seed for p in seen_plans}
    assert all(p.p_drop == 0.5 for p in seen_plans)
    assert len({p.seed for p in seen_plans}) == 3


def test_run_verified_declares_failure_with_reasons():
    plan = FaultPlan(seed=2)
    with pytest.raises(DetectedFailure) as info:
        run_verified(
            lambda: (_ for _ in ()).throw(RuntimeError("boom")),
            lambda value: [],
            plan,
            label="doomed",
            max_attempts=2,
        )
    error = info.value
    assert error.attempts == 2
    assert len(error.reasons) == 2
    assert "RuntimeError" in error.reasons[0]
    assert "doomed" in str(error)


def test_run_verified_rejects_zero_attempts():
    with pytest.raises(ValueError):
        run_verified(lambda: 1, lambda v: [], FaultPlan(), max_attempts=0)


# ----------------------------------------------------------------------
# End-to-end verified applications under fault plans
# ----------------------------------------------------------------------


def test_verified_mst_recovers_under_drops(wgrid):
    plan = FaultPlan(seed=3, p_drop=0.02)
    outcome = verified_mst(wgrid, plan, seed=1)
    edges, weight = kruskal_reference(wgrid)
    assert outcome.value.edges == edges
    assert outcome.value.weight == weight
    assert outcome.attempts >= 1


def test_verified_connectivity_recovers_under_drops(wgrid):
    alive = [e for e in wgrid.edges if 0 not in e]
    plan = FaultPlan(seed=4, p_drop=0.02)
    outcome = verified_connectivity(wgrid, alive, plan, seed=1)
    assert certify_components(wgrid, alive, outcome.value) == []
    assert outcome.value.components == 2


def test_verified_leaders_recovers_under_drops():
    topology = generators.grid(4, 4)
    partition = partitions.voronoi(topology, 4, seed=3)
    plan = FaultPlan(seed=5, p_drop=0.02)
    outcome = verified_leaders(topology, partition, plan, seed=1)
    for i in range(partition.size):
        assert outcome.value.leaders[i] == min(partition.members(i))


def test_verified_mst_declares_crash_partitions(wgrid):
    # A crashed node persists across reseeds, so no retry can succeed:
    # the run must end as a declared failure, never a wrong tree.
    plan = FaultPlan(seed=6, crashes=((5, 1),))
    with pytest.raises(DetectedFailure) as info:
        verified_mst(wgrid, plan, seed=1, max_attempts=2)
    assert info.value.attempts == 2


def test_bare_protocol_detects_but_cannot_recover(wgrid):
    # Without the reliable sublayer any dropped message corrupts some
    # phase; the certificate (or a model check) catches it and the run
    # is declared failed — detection without recovery.
    plan = FaultPlan(seed=7, p_drop=0.05)
    with pytest.raises(DetectedFailure):
        verified_mst(wgrid, plan, seed=1, max_attempts=1, reliable=False)
