"""Tests for partwise aggregation primitives."""

import pytest

from repro.apps.aggregation import (
    aggregate_max,
    aggregate_min,
    aggregate_sum,
    exchange_labels,
    min_outgoing_edges,
)
from repro.core import quality
from repro.core.core_slow import core_slow
from repro.core.existence import best_certified
from repro.core.partwise import PartwiseEngine


@pytest.fixture
def setup(grid6, grid6_tree, grid6_voronoi):
    point = best_certified(grid6_tree, grid6_voronoi)
    outcome = core_slow(grid6, grid6_tree, grid6_voronoi, point.congestion)
    engine = PartwiseEngine(grid6, outcome.shortcut, seed=3)
    b = max(1, quality.block_parameter(outcome.shortcut))
    return grid6, grid6_voronoi, engine, b


def test_exchange_labels_symmetric(grid6):
    labels = {v: v % 4 for v in grid6.nodes}
    neighbor_labels = exchange_labels(grid6, labels)
    for v in grid6.nodes:
        for w in grid6.neighbors(v):
            assert neighbor_labels[v][w] == labels[w]


def test_exchange_labels_none_as_placeholder(grid6):
    labels = {v: (None if v == 0 else 1) for v in grid6.nodes}
    neighbor_labels = exchange_labels(grid6, labels)
    assert neighbor_labels[1][0] is None


def test_aggregate_min(setup):
    _t, partition, engine, b = setup
    values = {v: 100 - v for v in engine.block_of}
    out = aggregate_min(engine, values, b)
    for i in range(partition.size):
        expected = min(100 - v for v in partition.members(i))
        assert all(out[v] == expected for v in partition.members(i))


def test_aggregate_max(setup):
    _t, partition, engine, b = setup
    values = {v: v for v in engine.block_of}
    out = aggregate_max(engine, values, b)
    for i in range(partition.size):
        expected = max(partition.members(i))
        assert all(out[v] == expected for v in partition.members(i))


def test_aggregate_sum(setup):
    _t, partition, engine, b = setup
    values = {v: 2 for v in engine.block_of}
    out = aggregate_sum(engine, values, b)
    for i in range(partition.size):
        expected = 2 * len(partition.members(i))
        assert all(out[v] == expected for v in partition.members(i))


def test_min_outgoing_edges_correct(setup):
    topology, partition, engine, b = setup
    weighted = topology.with_weights(
        {edge: 1 + (edge[0] * 7 + edge[1] * 13) % 97 for edge in topology.edges}
    )
    out, _nbr = min_outgoing_edges(weighted, engine, b)
    for i in range(partition.size):
        members = partition.members(i)
        candidates = []
        for u in members:
            for w in weighted.neighbors(u):
                if partition.part_of(w) != i:
                    candidates.append((weighted.weight(u, w), u, w))
        expected = min(candidates)
        for v in members:
            assert out[v] == expected


def test_min_outgoing_none_for_spanning_part(grid6, grid6_tree):
    from repro.graphs.partitions import whole

    partition = whole(grid6)
    from repro.core.existence import best_certified
    from repro.core.core_slow import core_slow

    point = best_certified(grid6_tree, partition)
    outcome = core_slow(grid6, grid6_tree, partition, point.congestion)
    engine = PartwiseEngine(grid6, outcome.shortcut, seed=4)
    out, _nbr = min_outgoing_edges(grid6, engine, 1)
    assert all(value is None for value in out.values())


def test_min_outgoing_respects_custom_labels(setup):
    topology, partition, engine, b = setup
    # Pretend two parts merged: same label -> edges between them are
    # no longer outgoing.
    labels = {v: partition.part_of(v) for v in topology.nodes}
    merged = {v: (0 if labels[v] in (0, 1) else labels[v]) for v in topology.nodes}
    out, _nbr = min_outgoing_edges(topology, engine, b, labels=merged)
    for v in engine.block_of:
        edge = out[v]
        if edge is not None:
            _w, a, bnode = edge
            assert merged[a] != merged[bnode]
