"""Tests for the leader-election app."""

from repro.apps.leader_election import elect_leaders
from repro.core import quality
from repro.core.core_slow import core_slow
from repro.core.existence import best_certified


def test_leaders_are_part_minima(grid6, grid6_tree, grid6_voronoi):
    point = best_certified(grid6_tree, grid6_voronoi)
    outcome = core_slow(grid6, grid6_tree, grid6_voronoi, point.congestion)
    b = max(1, quality.block_parameter(outcome.shortcut))
    result = elect_leaders(grid6, outcome.shortcut, b, seed=1)
    for i in range(grid6_voronoi.size):
        assert result.leaders[i] == min(grid6_voronoi.members(i))


def test_every_member_knows_its_leader(grid6, grid6_tree, grid6_voronoi):
    point = best_certified(grid6_tree, grid6_voronoi)
    outcome = core_slow(grid6, grid6_tree, grid6_voronoi, point.congestion)
    b = max(1, quality.block_parameter(outcome.shortcut))
    result = elect_leaders(grid6, outcome.shortcut, b, seed=2)
    for i in range(grid6_voronoi.size):
        for v in grid6_voronoi.members(i):
            assert result.knowledge[v] == result.leaders[i]


def test_rounds_recorded(grid6, grid6_tree, grid6_voronoi):
    point = best_certified(grid6_tree, grid6_voronoi)
    outcome = core_slow(grid6, grid6_tree, grid6_voronoi, point.congestion)
    result = elect_leaders(grid6, outcome.shortcut, 2, seed=3)
    assert result.rounds > 0


def test_rounds_scale_with_b_bound(grid6, grid6_tree, grid6_voronoi):
    point = best_certified(grid6_tree, grid6_voronoi)
    outcome = core_slow(grid6, grid6_tree, grid6_voronoi, point.congestion)
    fast = elect_leaders(grid6, outcome.shortcut, 1, seed=4)
    slow = elect_leaders(grid6, outcome.shortcut, 4, seed=4)
    assert slow.rounds > fast.rounds
