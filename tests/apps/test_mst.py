"""Tests for the shortcut-accelerated Borůvka MST (Lemma 4)."""

import math

import pytest

from repro.apps.mst import kruskal_reference, minimum_spanning_tree
from repro.errors import ReproError
from repro.graphs import generators
from repro.graphs.weights import weighted


def _check_exact(topology, **kwargs):
    result = minimum_spanning_tree(topology, **kwargs)
    edges, weight = kruskal_reference(topology)
    assert result.weight == weight
    assert result.edges == edges
    assert len(result.edges) == topology.n - 1
    return result


def test_exact_on_grid_doubling():
    _check_exact(weighted(generators.grid(5, 5), seed=1), params="doubling", seed=2)


def test_exact_on_torus_genus_mode():
    _check_exact(
        weighted(generators.torus(5, 5), seed=2),
        params="genus", genus=1, seed=3,
    )


def test_exact_on_planar_genus_zero():
    _check_exact(
        weighted(generators.grid(5, 5), seed=3),
        params="genus", genus=0, seed=4,
    )


def test_exact_with_given_parameters():
    topology = weighted(generators.grid(5, 5), seed=4)
    _check_exact(topology, params="given", c=10, b=3, seed=5)


def test_exact_with_certified_mode():
    _check_exact(weighted(generators.grid(5, 5), seed=5), params="certified", seed=6)


def test_exact_with_core_slow():
    _check_exact(
        weighted(generators.grid(4, 4), seed=6),
        params="doubling", use_fast=False, seed=7,
    )


def test_phase_count_logarithmic():
    topology = weighted(generators.grid(6, 6), seed=7)
    result = _check_exact(topology, params="doubling", seed=8)
    assert result.phases <= 8 * math.ceil(math.log2(topology.n)) + 8


def test_phase_records_monotone_fragments():
    topology = weighted(generators.grid(5, 5), seed=8)
    result = _check_exact(topology, params="doubling", seed=9)
    fragments = [record.fragments for record in result.phase_records]
    assert fragments[0] == topology.n
    assert all(a >= b for a, b in zip(fragments, fragments[1:]))
    assert fragments[-1] >= 2


def test_merges_sum_to_n_minus_one():
    topology = weighted(generators.grid(5, 5), seed=9)
    result = _check_exact(topology, params="doubling", seed=10)
    assert sum(record.merges for record in result.phase_records) == topology.n - 1


def test_mode_validation():
    topology = weighted(generators.grid(4, 4), seed=10)
    with pytest.raises(ReproError):
        minimum_spanning_tree(topology, params="genus")  # missing genus
    with pytest.raises(ReproError):
        minimum_spanning_tree(topology, params="given", c=3)  # missing b
    with pytest.raises(ReproError):
        minimum_spanning_tree(topology, params="nonsense")


def test_mode_kwarg_removed_after_deprecation():
    # The one-release deprecation window for the mode= alias is over:
    # mode names the construction-kernel axis elsewhere, and the MST
    # entry point only accepts params= now.
    topology = weighted(generators.grid(4, 4), seed=10)
    with pytest.raises(TypeError):
        minimum_spanning_tree(topology, mode="doubling", seed=12)


def test_reproducible_with_seed():
    topology = weighted(generators.grid(4, 4), seed=11)
    a = minimum_spanning_tree(topology, params="doubling", seed=12)
    b = minimum_spanning_tree(topology, params="doubling", seed=12)
    assert a.rounds == b.rounds
    assert a.edges == b.edges


@pytest.mark.skipif(
    not generators.geometry_available(),
    reason="delaunay needs the geometry extra (numpy + scipy)",
)
def test_kruskal_reference_against_networkx():
    import networkx as nx

    topology = weighted(generators.delaunay(40, seed=2), seed=13)
    _edges, weight = kruskal_reference(topology)
    nx_weight = sum(
        d["weight"]
        for _u, _v, d in nx.minimum_spanning_edges(topology.to_networkx(), data=True)
    )
    assert weight == nx_weight


def test_ledger_contains_construction_phases():
    topology = weighted(generators.grid(4, 4), seed=14)
    result = minimum_spanning_tree(topology, params="doubling", seed=15)
    names = {record.name for record in result.ledger.records}
    assert any("core" in name for name in names)
    assert any("bfs" in name for name in names)
