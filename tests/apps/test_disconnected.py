"""Disconnected topologies are first-class in every application.

A failure scenario that disconnects the survivor must not crash the
application layer: MST returns the minimum spanning *forest*,
connectivity labels per graph component, and min-cut reports the exact
0-cut with a component certificate.  The ledger semantics everywhere:
disjoint CONGEST networks run concurrently, so the reported rounds are
the slowest component's (the makespan).
"""

import pytest

from repro.apps.connectivity import connected_components
from repro.apps.mincut import approximate_min_cut
from repro.apps.mst import kruskal_reference, minimum_spanning_tree
from repro.graphs import generators
from repro.graphs.weights import weighted


@pytest.fixture
def split_grid():
    """A 5x6 grid cut into two components (columns 0-2 | 3-5)."""
    topology = weighted(generators.grid(5, 6), seed=4)
    cut = [e for e in topology.edges if e[0] % 6 == 2 and e[1] % 6 == 3]
    survivor = topology.delete_edges(cut)
    assert not survivor.is_connected
    return survivor


@pytest.mark.parametrize("backend", ["simulate", "direct"])
def test_mst_forest_matches_kruskal(split_grid, backend):
    result = minimum_spanning_tree(
        split_grid, seed=5, construct_mode="direct", backend=backend
    )
    edges, weight = kruskal_reference(split_grid)
    assert result.components == 2
    assert result.weight == weight
    assert result.edges == edges
    assert len(result.edges) == split_grid.n - 2
    assert result.rounds > 0


def test_mst_forest_with_singletons():
    topology = weighted(generators.grid(3, 3), seed=1)
    survivor = topology.delete_edges([(0, 1), (0, 3)])  # isolates node 0
    result = minimum_spanning_tree(
        survivor, seed=1, construct_mode="direct", backend="direct"
    )
    edges, weight = kruskal_reference(survivor)
    assert result.components == 2
    assert (result.edges, result.weight) == (edges, weight)


@pytest.mark.parametrize("backend", ["simulate", "direct"])
def test_connectivity_labels_per_component(split_grid, backend):
    result = connected_components(
        split_grid, split_grid.edges, seed=2,
        construct_mode="direct", backend=backend,
    )
    assert result.graph_components == 2
    assert result.components == 2
    for component in split_grid.components():
        lead = min(component)
        assert all(result.labels[v] == lead for v in component)


def test_connectivity_partial_alive_on_disconnected(split_grid):
    # No alive edges at all: every node is its own component.
    result = connected_components(
        split_grid, [], seed=2, construct_mode="direct", backend="direct"
    )
    assert result.components == split_grid.n
    assert result.labels == {v: v for v in split_grid.nodes}
    assert result.graph_components == 2


def test_mincut_reports_zero_cut(split_grid):
    result = approximate_min_cut(
        split_grid, seed=0, construct_mode="direct", backend="direct"
    )
    assert result.value == 0
    assert result.cut_edges == frozenset()
    assert result.components == 2
    assert result.side == frozenset(split_grid.components()[0])
    assert result.trees_packed == 0
    assert result.rounds == 0


def test_connected_case_keeps_default_component_fields():
    topology = weighted(generators.grid(3, 3), seed=2)
    mst = minimum_spanning_tree(
        topology, seed=1, construct_mode="direct", backend="direct"
    )
    conn = connected_components(
        topology, topology.edges, seed=1,
        construct_mode="direct", backend="direct",
    )
    cut = approximate_min_cut(
        topology, seed=1, construct_mode="direct", backend="direct"
    )
    assert mst.components == 1
    assert conn.graph_components == 1
    assert cut.components == 1
    assert cut.value > 0
