"""Tests for the baseline MST algorithms."""

import pytest

from repro.apps.mst import kruskal_reference
from repro.apps.mst_baselines import (
    mst_collect_at_root,
    mst_kutten_peleg,
    mst_no_shortcut,
)
from repro.graphs import generators
from repro.graphs.weights import hub_adversarial_weights, weighted


@pytest.fixture(scope="module")
def grid_instance():
    return weighted(generators.grid(6, 6), seed=21)


@pytest.mark.parametrize(
    "algorithm", [mst_no_shortcut, mst_kutten_peleg, mst_collect_at_root]
)
def test_exact_on_grid(grid_instance, algorithm):
    result = algorithm(grid_instance, seed=3)
    edges, weight = kruskal_reference(grid_instance)
    assert result.weight == weight
    assert result.edges == edges


@pytest.mark.skipif(
    not generators.geometry_available(),
    reason="delaunay needs the geometry extra (numpy + scipy)",
)
@pytest.mark.parametrize(
    "algorithm", [mst_no_shortcut, mst_kutten_peleg, mst_collect_at_root]
)
def test_exact_on_delaunay(algorithm):
    topology = weighted(generators.delaunay(50, seed=4), seed=22)
    result = algorithm(topology, seed=5)
    _edges, weight = kruskal_reference(topology)
    assert result.weight == weight


def test_exact_on_adversarial_hub():
    topology = hub_adversarial_weights(
        generators.cycle_with_hub(48, 8), 48, seed=1
    )
    for algorithm in (mst_no_shortcut, mst_kutten_peleg, mst_collect_at_root):
        result = algorithm(topology, seed=6)
        _edges, weight = kruskal_reference(topology)
        assert result.weight == weight


def test_no_shortcut_pays_fragment_diameters():
    """On the adversarial hub, intra-fragment Borůvka costs grow with
    the arc length while the collect-at-root baseline stays ~m + D."""
    small = hub_adversarial_weights(generators.cycle_with_hub(64, 8), 64)
    large = hub_adversarial_weights(generators.cycle_with_hub(256, 8), 256)
    rounds_small = mst_no_shortcut(small, seed=7).rounds
    rounds_large = mst_no_shortcut(large, seed=7).rounds
    assert rounds_large > 2 * rounds_small


def test_collect_at_root_rounds_linear_in_m(grid_instance):
    result = mst_collect_at_root(grid_instance, seed=8)
    d = grid_instance.diameter()
    assert result.rounds <= 4 * (grid_instance.m + grid_instance.n + 4 * d)


def test_kutten_peleg_cap_override(grid_instance):
    result = mst_kutten_peleg(grid_instance, seed=9, cap=4)
    _edges, weight = kruskal_reference(grid_instance)
    assert result.weight == weight


def test_kutten_peleg_on_path():
    topology = weighted(generators.path(40), seed=23)
    result = mst_kutten_peleg(topology, seed=10)
    assert result.weight == kruskal_reference(topology)[1]


def test_no_shortcut_on_star():
    topology = weighted(generators.star(20), seed=24)
    result = mst_no_shortcut(topology, seed=11)
    # The star's MST is all edges.
    assert result.edges == frozenset(topology.edges)
