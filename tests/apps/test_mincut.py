"""Tests for the tree-packing min-cut approximation."""

import networkx as nx
import pytest

from repro.apps.mincut import approximate_min_cut
from repro.graphs import generators


def _exact(topology):
    return nx.stoer_wagner(topology.to_networkx(), weight=None)[0]


@pytest.mark.parametrize(
    "topology",
    [
        generators.grid(6, 6),
        generators.torus(5, 5),
        generators.erdos_renyi_connected(40, 0.12, seed=2),
        generators.cycle_with_hub(40, 5),
    ],
    ids=["grid", "torus", "er", "hub"],
)
def test_upper_bound_and_approximation(topology):
    result = approximate_min_cut(topology, seed=1)
    exact = _exact(topology)
    assert result.value >= exact  # any 1-respecting cut is a real cut
    assert result.value <= 3 * exact  # packing quality (loose check)


def test_cut_edges_consistent_with_side():
    topology = generators.grid(5, 5)
    result = approximate_min_cut(topology, seed=2)
    for u, v in result.cut_edges:
        assert (u in result.side) != (v in result.side)
    assert len(result.cut_edges) == result.value
    assert 0 < len(result.side) < topology.n


def test_bridge_found_exactly():
    # Two grids joined by one bridge: min cut 1, and the packing must
    # find it (every spanning tree crosses the bridge once).
    t = generators.genus_chain(2, 3, 3)
    result = approximate_min_cut(t, seed=3)
    assert result.value == 1


def test_more_trees_never_hurt():
    topology = generators.torus(5, 5)
    few = approximate_min_cut(topology, trees=2, seed=4)
    many = approximate_min_cut(topology, trees=12, seed=4)
    assert many.value <= few.value


def test_rounds_charged():
    topology = generators.grid(5, 5)
    result = approximate_min_cut(topology, seed=5)
    assert result.rounds > 0
    assert result.trees_packed >= 3


def test_distributed_mst_variant_agrees():
    from repro.graphs.weights import weighted

    topology = generators.grid(4, 4)
    central = approximate_min_cut(topology, trees=3, seed=6)
    distributed = approximate_min_cut(
        topology, trees=3, seed=6, use_distributed_mst=True
    )
    exact = _exact(topology)
    assert central.value >= exact
    assert distributed.value >= exact
    # The distributed variant charges the full MST rounds.
    assert distributed.rounds > central.rounds
