"""Tests for intra-fragment communication (the no-shortcut toolkit)."""

from repro.apps.fragment_comm import fragment_aggregate, fragment_flood_min
from repro.congest.trace import RoundLedger
from repro.graphs import generators, partitions


def _labels(partition, n):
    return {v: partition.part_of(v) for v in range(n)}


def test_flood_min_finds_minimum(grid6, grid6_voronoi):
    labels = _labels(grid6_voronoi, grid6.n)
    values = {v: 1000 - v for v in grid6.nodes}
    best, _parents = fragment_flood_min(grid6, labels, values)
    for i in range(grid6_voronoi.size):
        expected = min(1000 - v for v in grid6_voronoi.members(i))
        assert all(best[v] == expected for v in grid6_voronoi.members(i))


def test_flood_parents_form_tree(grid6, grid6_voronoi):
    labels = _labels(grid6_voronoi, grid6.n)
    values = {v: v for v in grid6.nodes}
    _best, parents = fragment_flood_min(grid6, labels, values)
    for i in range(grid6_voronoi.size):
        members = grid6_voronoi.members(i)
        roots = [v for v in members if parents[v] is None]
        assert roots == [min(members)]
        # Every parent chain ends at the root without leaving the part.
        for v in members:
            seen = set()
            node = v
            while parents[node] is not None:
                assert node not in seen
                seen.add(node)
                node = parents[node]
                assert node in members
            assert node == roots[0]


def test_aggregate_min_and_sum(grid6, grid6_voronoi):
    labels = _labels(grid6_voronoi, grid6.n)
    out_min = fragment_aggregate(
        grid6, labels, {v: v for v in grid6.nodes}, "min"
    )
    out_sum = fragment_aggregate(
        grid6, labels, {v: 1 for v in grid6.nodes}, "sum"
    )
    for i in range(grid6_voronoi.size):
        members = grid6_voronoi.members(i)
        assert all(out_min[v] == min(members) for v in members)
        assert all(out_sum[v] == len(members) for v in members)


def test_aggregate_rounds_scale_with_fragment_diameter():
    topology = generators.cycle_with_hub(128, 8)
    partition = partitions.cycle_arcs(128, 4, extra_nodes=1)
    labels = {v: partition.part_of(v) for v in topology.nodes}
    ledger = RoundLedger()
    fragment_aggregate(
        topology, labels, {v: v for v in topology.nodes}, "min", ledger=ledger
    )
    max_diameter = max(partition.part_diameters(topology))
    # Must pay at least ~the fragment diameter, far above D.
    assert ledger.simulated_rounds >= max_diameter
    assert max_diameter > 2 * topology.diameter()


def test_uncovered_nodes_are_silent(grid6):
    partition = partitions.voronoi(grid6, 4, seed=1)
    labels = {v: partition.part_of(v) for v in grid6.nodes}
    labels[0] = None  # orphan one node
    out = fragment_aggregate(grid6, labels, {v: v for v in grid6.nodes}, "min")
    assert out[0] is None


def test_singleton_fragments(grid6):
    labels = {v: v for v in grid6.nodes}
    out = fragment_aggregate(grid6, labels, {v: v * 2 for v in grid6.nodes}, "min")
    assert all(out[v] == v * 2 for v in grid6.nodes)
