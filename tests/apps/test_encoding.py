"""Tests for payload encodings."""

import pytest

from repro.apps.encoding import (
    decode_edge_candidate,
    decode_pair,
    encode_edge_candidate,
    encode_pair,
)
from repro.errors import ReproError


def test_edge_candidate_roundtrip():
    for w, u, v in [(0, 0, 0), (7, 3, 9), (999, 11, 0)]:
        code = encode_edge_candidate(w, u, v, 12)
        assert decode_edge_candidate(code, 12) == (w, u, v)


def test_edge_candidate_order_is_lexicographic():
    n = 16
    a = encode_edge_candidate(3, 2, 5, n)
    b = encode_edge_candidate(3, 2, 6, n)
    c = encode_edge_candidate(3, 3, 0, n)
    d = encode_edge_candidate(4, 0, 0, n)
    assert a < b < c < d


def test_edge_candidate_rejects_negative_weight():
    with pytest.raises(ReproError):
        encode_edge_candidate(-1, 0, 1, 4)


def test_edge_candidate_rejects_out_of_range():
    with pytest.raises(ReproError):
        encode_edge_candidate(1, 4, 0, 4)
    with pytest.raises(ReproError):
        encode_edge_candidate(1, 0, 9, 4)


def test_pair_roundtrip():
    for a, b in [(0, 0), (3, 7), (9, 1)]:
        assert decode_pair(encode_pair(a, b, 10), 10) == (a, b)


def test_pair_rejects_out_of_range():
    with pytest.raises(ReproError):
        encode_pair(10, 0, 10)


def test_pair_order():
    assert encode_pair(1, 9, 10) < encode_pair(2, 0, 10)
