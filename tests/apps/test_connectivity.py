"""Tests for connected-components labelling."""

import random

import networkx as nx
import pytest

from repro.apps.connectivity import connected_components
from repro.graphs import generators


def _expected_labels(topology, alive):
    g = nx.Graph()
    g.add_nodes_from(range(topology.n))
    g.add_edges_from(alive)
    labels = {}
    for component in nx.connected_components(g):
        lead = min(component)
        for v in component:
            labels[v] = lead
    return labels


@pytest.mark.parametrize("use_shortcuts", [True, False])
def test_matches_networkx(grid6, use_shortcuts):
    rng = random.Random(3)
    alive = [e for e in grid6.edges if rng.random() < 0.5]
    result = connected_components(
        grid6, alive, use_shortcuts=use_shortcuts, seed=1
    )
    assert result.labels == _expected_labels(grid6, alive)


def test_all_edges_alive_single_component(grid6):
    result = connected_components(grid6, grid6.edges, seed=2)
    assert result.components == 1
    assert set(result.labels.values()) == {0}


def test_no_edges_alive_all_singletons(grid6):
    result = connected_components(grid6, [], seed=3)
    assert result.components == grid6.n
    assert all(result.labels[v] == v for v in grid6.nodes)


def test_component_count(grid6):
    rng = random.Random(9)
    alive = [e for e in grid6.edges if rng.random() < 0.3]
    result = connected_components(grid6, alive, seed=4)
    g = nx.Graph()
    g.add_nodes_from(range(grid6.n))
    g.add_edges_from(alive)
    assert result.components == nx.number_connected_components(g)


def test_variants_agree(torus5):
    rng = random.Random(5)
    alive = [e for e in torus5.edges if rng.random() < 0.4]
    with_shortcut = connected_components(torus5, alive, use_shortcuts=True, seed=6)
    without = connected_components(torus5, alive, use_shortcuts=False, seed=6)
    assert with_shortcut.labels == without.labels
