"""Differential conformance: direct application backend vs simulation.

Every test runs the same application in ``backend="simulate"`` and
``backend="direct"`` and asserts the observable outcome is bit-for-bit
identical — not just combinatorial outputs (MST edges, weights, phase
counts, per-phase records, component labels, cut values, per-part
aggregates) but the *entire round ledger*: phase names, rounds,
messages, and barrier charges.  Unlike the construction kernels (whose
Verification phase is an analytic upper bound), the partwise replays
are exact, so the ledgers must match to the round.  This suite is what
licenses the direct backend for the large-scale application
experiments (E9/E10/E13/E17) — exactly as the engine-equivalence and
construct-equivalence suites license their layers.
"""

import pytest

from repro.apps.aggregation import (
    aggregate_max,
    aggregate_min,
    aggregate_sum,
    exchange_labels,
    min_outgoing_edges,
)
from repro.apps.connectivity import connected_components
from repro.apps.fragment_comm import fragment_aggregate, fragment_flood_min
from repro.apps.leader_election import elect_leaders
from repro.apps.mincut import approximate_min_cut
from repro.apps.mst import kruskal_reference, minimum_spanning_tree
from repro.congest.trace import RoundLedger
from repro.core import quality
from repro.core.core_slow import core_slow
from repro.core.existence import best_certified
from repro.core.partwise import PartwiseEngine
from repro.core.partwise_fast import superstep_cost_bound, using_backend
from repro.graphs import generators, partitions
from repro.graphs.weights import weighted

BACKENDS = ("simulate", "direct")


def _instances():
    grid = generators.grid(6, 6)
    torus = generators.torus(5, 5)
    hub = generators.cycle_with_hub(48, 8)
    instances = {
        "grid": (weighted(grid, seed=1), partitions.voronoi(grid, 6, seed=3)),
        "torus": (weighted(torus, seed=2), partitions.voronoi(torus, 5, seed=2)),
        "hub": (weighted(hub, seed=3), partitions.cycle_arcs(48, 8, extra_nodes=1)),
    }
    if generators.geometry_available():
        # The delaunay family needs the optional geometry extra; the
        # pool (and its parametrized tests) shrinks without it.
        delaunay = generators.delaunay(40, 3)
        instances["delaunay"] = (
            weighted(delaunay, seed=4),
            partitions.voronoi(delaunay, 6, seed=5),
        )
    return instances


INSTANCES = _instances()


def _assert_ledgers_identical(simulate, direct):
    """Bit-for-bit ledger equality: names, rounds, messages, barriers."""
    assert simulate.records == direct.records
    assert simulate.total_rounds == direct.total_rounds
    assert simulate.total_messages == direct.total_messages


# ----------------------------------------------------------------------
# MST
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(INSTANCES))
def test_mst_direct_backend_identical(name):
    topology, _partition = INSTANCES[name]
    results = {
        backend: minimum_spanning_tree(
            topology, params="doubling", seed=9, backend=backend
        )
        for backend in BACKENDS
    }
    simulate, direct = results["simulate"], results["direct"]
    assert direct.edges == simulate.edges
    assert direct.weight == simulate.weight
    assert direct.phases == simulate.phases
    assert direct.phase_records == simulate.phase_records
    _assert_ledgers_identical(simulate.ledger, direct.ledger)
    _edges, ref_weight = kruskal_reference(topology)
    assert direct.weight == ref_weight


@pytest.mark.parametrize("params,kwargs", [
    ("genus", {"genus": 1}),
    ("certified", {}),
])
def test_mst_direct_backend_identical_other_params(params, kwargs):
    topology, _partition = INSTANCES["torus"]
    results = {
        backend: minimum_spanning_tree(
            topology, params=params, seed=5, backend=backend, **kwargs
        )
        for backend in BACKENDS
    }
    assert results["direct"].edges == results["simulate"].edges
    assert results["direct"].phase_records == results["simulate"].phase_records
    _assert_ledgers_identical(results["simulate"].ledger, results["direct"].ledger)


@pytest.mark.parametrize("name", sorted(INSTANCES))
def test_mst_direct_backend_with_direct_construction(name):
    """The fully-direct stack (backend + construction kernels) keeps
    every combinatorial output; only the construction rounds swap to
    the Lemma 3 analytic model (aggregate rounds stay exact)."""
    topology, _partition = INSTANCES[name]
    simulate = minimum_spanning_tree(topology, params="doubling", seed=9)
    direct = minimum_spanning_tree(
        topology, params="doubling", seed=9,
        backend="direct", construct_mode="direct",
    )
    assert direct.edges == simulate.edges
    assert direct.weight == simulate.weight
    assert direct.phases == simulate.phases
    for sim_rec, dir_rec in zip(simulate.phase_records, direct.phase_records):
        assert dir_rec.fragments == sim_rec.fragments
        assert dir_rec.merges == sim_rec.merges
        assert dir_rec.shortcut_b == sim_rec.shortcut_b
        assert dir_rec.aggregate_rounds == sim_rec.aggregate_rounds


def test_mst_phase_records_carry_round_breakdown():
    topology, _partition = INSTANCES["grid"]
    result = minimum_spanning_tree(topology, params="doubling", seed=9)
    assert result.phase_records
    for record in result.phase_records:
        assert record.construct_rounds > 0
        assert record.aggregate_rounds > 0
    total = sum(
        r.construct_rounds + r.aggregate_rounds for r in result.phase_records
    )
    # Everything except the BFS-tree + share-randomness preamble is
    # attributed to exactly one phase.
    preamble = sum(
        rec.rounds + rec.barrier_rounds
        for rec in result.ledger.records
        if rec.name in ("bfs-tree", "share-randomness")
    )
    assert preamble + total == result.ledger.total_rounds


# ----------------------------------------------------------------------
# Connectivity
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(INSTANCES))
@pytest.mark.parametrize("use_shortcuts", [True, False], ids=["shortcut", "plain"])
def test_connectivity_direct_backend_identical(name, use_shortcuts):
    topology, _partition = INSTANCES[name]
    alive = [edge for i, edge in enumerate(topology.edges) if i % 3 != 0]
    results = {
        backend: connected_components(
            topology, alive, use_shortcuts=use_shortcuts, seed=5, backend=backend
        )
        for backend in BACKENDS
    }
    simulate, direct = results["simulate"], results["direct"]
    assert direct.labels == simulate.labels
    assert direct.components == simulate.components
    assert direct.phases == simulate.phases
    _assert_ledgers_identical(simulate.ledger, direct.ledger)


# ----------------------------------------------------------------------
# Min-cut
# ----------------------------------------------------------------------


def test_mincut_direct_backend_identical_distributed():
    topology = weighted(generators.torus(4, 4), seed=7)
    results = {
        backend: approximate_min_cut(
            topology, trees=3, seed=5, use_distributed_mst=True, backend=backend
        )
        for backend in BACKENDS
    }
    simulate, direct = results["simulate"], results["direct"]
    assert direct.value == simulate.value
    assert direct.cut_edges == simulate.cut_edges
    assert direct.side == simulate.side
    _assert_ledgers_identical(simulate.ledger, direct.ledger)


def test_mincut_direct_backend_identical_central():
    topology = generators.grid(5, 5)
    results = {
        backend: approximate_min_cut(topology, seed=2, backend=backend)
        for backend in BACKENDS
    }
    assert results["direct"].value == results["simulate"].value
    assert results["direct"].side == results["simulate"].side
    _assert_ledgers_identical(
        results["simulate"].ledger, results["direct"].ledger
    )


# ----------------------------------------------------------------------
# Leader election + aggregation primitives
# ----------------------------------------------------------------------


def _shortcut_setup(name):
    topology, partition = INSTANCES[name]
    from repro.graphs.spanning_trees import SpanningTree

    tree = SpanningTree.bfs(topology, 0)
    point = best_certified(tree, partition)
    outcome = core_slow(topology, tree, partition, point.congestion, seed=17)
    b_bound = max(1, quality.block_parameter(outcome.shortcut))
    return topology, partition, outcome.shortcut, b_bound


@pytest.mark.parametrize("name", sorted(INSTANCES))
def test_leader_election_direct_backend_identical(name):
    topology, _partition, shortcut, b_bound = _shortcut_setup(name)
    results = {
        backend: elect_leaders(topology, shortcut, b_bound, seed=3, backend=backend)
        for backend in BACKENDS
    }
    assert results["direct"].leaders == results["simulate"].leaders
    assert results["direct"].knowledge == results["simulate"].knowledge
    assert results["direct"].rounds == results["simulate"].rounds


@pytest.mark.parametrize("name", sorted(INSTANCES))
def test_aggregation_primitives_direct_backend_identical(name):
    topology, _partition, shortcut, b_bound = _shortcut_setup(name)
    values = {v: (v * 7) % 101 for v in topology.nodes}
    outputs = {}
    ledgers = {}
    for backend in BACKENDS:
        ledger = RoundLedger()
        engine = PartwiseEngine(
            topology, shortcut, seed=3, ledger=ledger, backend=backend
        )
        outputs[backend] = {
            "min": aggregate_min(engine, values, b_bound),
            "max": aggregate_max(engine, values, b_bound),
            "sum": aggregate_sum(engine, values, b_bound),
            "edges": min_outgoing_edges(topology, engine, b_bound, seed=5),
            "count": engine.count_blocks(b_bound),
        }
        ledgers[backend] = ledger
    assert outputs["direct"] == outputs["simulate"]
    _assert_ledgers_identical(ledgers["simulate"], ledgers["direct"])


@pytest.mark.parametrize("name", sorted(INSTANCES))
def test_partwise_rounds_respect_superstep_model(name):
    """The replayed ledger never exceeds the Lemma 2/3 cost model:
    b supersteps cost at most b (2(D + c + 2) + 1) rounds."""
    topology, _partition, shortcut, b_bound = _shortcut_setup(name)
    ledger = RoundLedger()
    engine = PartwiseEngine(
        topology, shortcut, seed=3, ledger=ledger, backend="direct"
    )
    before = ledger.total_rounds
    engine.minimum_per_part({v: v for v in engine.block_of}, b_bound)
    measured = ledger.total_rounds - before
    c = quality.shortcut_congestion(shortcut)
    bound = superstep_cost_bound(shortcut.tree.height, c, b_bound + 1)
    assert measured <= bound


# ----------------------------------------------------------------------
# Fragment-communication baselines + label exchange
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(INSTANCES))
def test_fragment_baselines_direct_backend_identical(name):
    topology, partition = INSTANCES[name]
    labels = {v: partition.part_of(v) for v in topology.nodes}
    values = {
        v: (v * 13) % 257 for v in topology.nodes if labels[v] is not None
    }
    outputs = {}
    ledgers = {}
    for backend in BACKENDS:
        ledger = RoundLedger()
        flood = fragment_flood_min(
            topology, labels, values, seed=3, ledger=ledger, backend=backend
        )
        aggregates = {
            combine: fragment_aggregate(
                topology, labels, values, combine,
                seed=5, ledger=ledger, backend=backend,
            )
            for combine in ("min", "max", "sum")
        }
        outputs[backend] = (flood, aggregates)
        ledgers[backend] = ledger
    assert outputs["direct"] == outputs["simulate"]
    _assert_ledgers_identical(ledgers["simulate"], ledgers["direct"])


@pytest.mark.parametrize("name", sorted(INSTANCES))
def test_exchange_labels_direct_backend_identical(name):
    topology, partition = INSTANCES[name]
    labels = {v: partition.part_of(v) for v in topology.nodes}
    ledgers = {backend: RoundLedger() for backend in BACKENDS}
    outputs = {
        backend: exchange_labels(
            topology, labels, seed=3, ledger=ledgers[backend], backend=backend
        )
        for backend in BACKENDS
    }
    assert outputs["direct"] == outputs["simulate"]
    _assert_ledgers_identical(ledgers["simulate"], ledgers["direct"])


def test_using_backend_scopes_the_default():
    topology, _partition = INSTANCES["grid"]
    with using_backend("direct"):
        scoped = minimum_spanning_tree(topology, params="doubling", seed=9)
    explicit = minimum_spanning_tree(
        topology, params="doubling", seed=9, backend="direct"
    )
    assert scoped.edges == explicit.edges
    assert scoped.ledger.records == explicit.ledger.records
