"""The paper's closing remark: the same generic construction covers
bounded-treewidth and bounded-pathwidth graphs (a result "in
preparation" at publication time).

We validate it observationally: on k-trees and series-parallel graphs
the doubling search finds shortcuts whose congestion and block
parameter stay small — far below the trivial (N, 1) / (0, max|P_i|)
extremes — and the MST pipeline built on them is exact.
"""

import pytest

from repro.apps.mst import kruskal_reference, minimum_spanning_tree
from repro.core import quality
from repro.core.doubling import find_shortcut_doubling
from repro.graphs import generators, partitions
from repro.graphs.spanning_trees import SpanningTree
from repro.graphs.weights import weighted

CLASSES = [
    ("k-tree(2)", lambda: generators.k_tree(60, 2, seed=3)),
    ("k-tree(4)", lambda: generators.k_tree(60, 4, seed=3)),
    ("series-parallel", lambda: generators.series_parallel(80, seed=3)),
]


@pytest.mark.parametrize("name,make", CLASSES, ids=[c[0] for c in CLASSES])
def test_doubling_finds_good_shortcuts(name, make):
    topology = make()
    tree = SpanningTree.bfs(topology, 0)
    partition = partitions.voronoi(topology, max(2, topology.n // 8), seed=5)
    outcome = find_shortcut_doubling(topology, tree, partition, seed=7)
    report = quality.measure(outcome.result.shortcut, topology, with_dilation=False)
    assert report.block_parameter <= 3 * outcome.b
    # Far from the trivial full-ancestor witness (congestion ~ N).
    assert report.shortcut_congestion < partition.size


@pytest.mark.parametrize("name,make", CLASSES[:2], ids=["k-tree(2)", "k-tree(4)"])
def test_mst_exact_on_treewidth_classes(name, make):
    topology = weighted(make(), seed=11)
    result = minimum_spanning_tree(topology, params="doubling", seed=13)
    assert result.weight == kruskal_reference(topology)[1]
