"""Direct checks of the paper's internal counting arguments.

The proofs of Lemmas 5 and 7 rest on two countable facts:

* the number of unusable edges satisfies ``|U| <= N * b / c`` (each
  part is blamed at most ``b`` times, and each unusable edge needs at
  least ``c`` blames);
* consequently at most ``|U| * c / (2b) <= N / 2`` parts are *bad*
  (a bad part must miss at least ``2b`` edges).

These are sharper, measurable statements than the headline guarantees,
and they must hold on every instance where the certified (c, b)
promise is genuine.
"""

import pytest

from repro.core import quality
from repro.core.core_slow import core_slow
from repro.core.existence import best_certified, greedy_capped_shortcut
from repro.graphs import generators, partitions
from repro.graphs.spanning_trees import SpanningTree

INSTANCES = [
    ("grid-rows", lambda: generators.grid(8, 8), lambda t: partitions.grid_rows(8, 8)),
    ("grid-voronoi", lambda: generators.grid(8, 8), lambda t: partitions.voronoi(t, 10, seed=2)),
    ("torus", lambda: generators.torus(6, 6), lambda t: partitions.voronoi(t, 8, seed=3)),
    ("hub", lambda: generators.cycle_with_hub(96, 8), lambda t: partitions.cycle_arcs(96, 8, extra_nodes=1)),
]


@pytest.mark.parametrize("name,make,parts", INSTANCES, ids=[i[0] for i in INSTANCES])
def test_unusable_edge_bound(name, make, parts):
    """Lemma 7's |U| <= N b / c, with (c, b) certified on the instance."""
    topology = make()
    partition = parts(topology)
    tree = SpanningTree.bfs(topology, 0)
    point = best_certified(tree, partition)
    outcome = core_slow(topology, tree, partition, point.congestion)
    bound = partition.size * point.block / point.congestion
    assert len(outcome.unusable) <= bound + 1e-9


@pytest.mark.parametrize("name,make,parts", INSTANCES, ids=[i[0] for i in INSTANCES])
def test_bad_part_bound(name, make, parts):
    """At most |U| c / (2b) parts can be bad — hence at least N/2 good."""
    topology = make()
    partition = parts(topology)
    tree = SpanningTree.bfs(topology, 0)
    point = best_certified(tree, partition)
    outcome = core_slow(topology, tree, partition, point.congestion)
    counts = quality.block_counts(outcome.shortcut)
    bad = sum(1 for count in counts if count > 3 * point.block)
    bad_bound = len(outcome.unusable) * point.congestion / (2 * point.block)
    assert bad <= bad_bound + 1e-9
    assert bad <= partition.size / 2


def test_missed_edges_create_at_most_one_block_each():
    """The proof identifies each extra block with a unique missed edge:
    blocks(computed) <= blocks(canonical) + missed edges."""
    topology = generators.grid(8, 8)
    partition = partitions.voronoi(topology, 10, seed=5)
    tree = SpanningTree.bfs(topology, 0)
    point = best_certified(tree, partition)
    canonical, _ = greedy_capped_shortcut(tree, partition, point.cap)
    outcome = core_slow(topology, tree, partition, point.congestion)
    canonical_counts = quality.block_counts(canonical)
    computed_counts = quality.block_counts(outcome.shortcut)
    for i in range(partition.size):
        missed = len(
            [e for e in canonical.subgraph(i) if e in outcome.unusable]
        )
        assert computed_counts[i] <= canonical_counts[i] + missed
