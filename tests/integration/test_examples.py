"""Smoke tests: every shipped example must run end to end."""

import os
import pathlib
import subprocess
import sys

import pytest

_REPO = pathlib.Path(__file__).resolve().parents[2]
EXAMPLES = sorted((_REPO / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=[p.stem for p in EXAMPLES])
def test_example_runs(script):
    # The subprocess does not inherit pytest's `pythonpath` ini setting,
    # so put the src layout on PYTHONPATH explicitly.
    env = dict(os.environ)
    src = str(_REPO / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "examples must print their findings"


def test_expected_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "mst_on_torus",
        "worst_case_hub",
        "unknown_parameters",
        "visualize_blocks",
    } <= names
