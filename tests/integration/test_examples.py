"""Smoke tests: every shipped example must run end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=[p.stem for p in EXAMPLES])
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "examples must print their findings"


def test_expected_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "mst_on_torus",
        "worst_case_hub",
        "unknown_parameters",
        "visualize_blocks",
    } <= names
