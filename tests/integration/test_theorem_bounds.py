"""Integration tests: every theorem's bound, end to end.

These tie the whole stack together: existence certification feeds the
distributed construction, the construction feeds the routing engine,
and every quantitative guarantee from the paper is asserted on the
result.
"""

import math

import pytest

from repro.congest.trace import RoundLedger
from repro.core import quality
from repro.core.existence import best_certified, genus_bound
from repro.core.find_shortcut import find_shortcut
from repro.core.partwise import PartwiseEngine
from repro.graphs import generators, partitions
from repro.graphs.spanning_trees import SpanningTree


needs_geometry = pytest.mark.skipif(
    not generators.geometry_available(),
    reason="delaunay needs the geometry extra (numpy + scipy)",
)

CASES = [
    ("grid", lambda: generators.grid(8, 8), 8),
    ("torus", lambda: generators.torus(6, 6), 6),
    ("delaunay", lambda: generators.delaunay(60, seed=1), 8),
    ("hub", lambda: generators.cycle_with_hub(96, 8), 6),
]


@pytest.mark.parametrize(
    "name,make,n_parts",
    [
        pytest.param(*case, marks=needs_geometry)
        if case[0] == "delaunay"
        else case
        for case in CASES
    ],
    ids=[c[0] for c in CASES],
)
def test_theorem3_quality_guarantees(name, make, n_parts):
    topology = make()
    tree = SpanningTree.bfs(topology, 0)
    partition = partitions.voronoi(topology, n_parts, seed=2)
    point = best_certified(tree, partition)
    result = find_shortcut(
        topology, tree, partition, point.congestion, point.block, seed=4
    )
    report = quality.measure(result.shortcut, topology, with_dilation=True)
    # Theorem 3: block <= 3b, congestion O(c log N).
    assert report.block_parameter <= 3 * point.block
    assert report.shortcut_congestion <= 8 * point.congestion * result.iterations
    assert result.iterations <= math.ceil(math.log2(partition.size + 1)) + 3
    # Lemma 1 on top.
    assert report.dilation <= quality.lemma1_bound(
        report.block_parameter, tree.height
    )


@pytest.mark.parametrize("genus", [0, 1, 2])
def test_corollary1_genus_pipeline(genus):
    topology = generators.genus_chain(genus, 4, 4)
    tree = SpanningTree.bfs(topology, 0)
    partition = partitions.voronoi(topology, max(2, topology.n // 8), seed=3)
    c, b = genus_bound(genus, tree.height)
    result = find_shortcut(topology, tree, partition, c, b, seed=5)
    report = quality.measure(result.shortcut, topology, with_dilation=False)
    assert report.block_parameter <= 3 * b


def test_theorem2_routing_on_constructed_shortcut():
    topology = generators.grid(8, 8)
    tree = SpanningTree.bfs(topology, 0)
    partition = partitions.voronoi(topology, 8, seed=6)
    point = best_certified(tree, partition)
    result = find_shortcut(
        topology, tree, partition, point.congestion, point.block, seed=7
    )
    report = quality.measure(result.shortcut, topology, with_dilation=False)
    ledger = RoundLedger()
    engine = PartwiseEngine(topology, result.shortcut, seed=8, ledger=ledger)
    b = max(1, report.block_parameter)
    c = max(1, report.shortcut_congestion)
    leaders, _knowledge = engine.elect_leaders(b)
    for i in range(partition.size):
        assert leaders[i] == min(partition.members(i))
    # Theorem 2: O(b (D + c)) with the superstep constant ~4.
    assert ledger.total_rounds <= 4 * (b + 1) * (tree.height + c + 2)


def test_rounds_scale_with_depth_not_part_diameter():
    """The headline promise: rounds track D, not part diameters."""
    ledgers = {}
    for n_cycle in (64, 256):
        topology = generators.cycle_with_hub(n_cycle, 8)
        partition = partitions.cycle_arcs(n_cycle, 8, extra_nodes=1)
        tree = SpanningTree.bfs(topology, n_cycle)
        point = best_certified(tree, partition)
        ledger = RoundLedger(barrier_depth=tree.height)
        find_shortcut(
            topology, tree, partition, point.congestion, point.block,
            seed=9, ledger=ledger,
        )
        ledgers[n_cycle] = ledger.total_rounds
    # Quadrupling n (and part diameters) must not quadruple rounds.
    assert ledgers[256] < 3 * ledgers[64]
