"""End-to-end pipelines exercising the full public API."""

import networkx as nx
import pytest

from repro.apps import (
    approximate_min_cut,
    connected_components,
    kruskal_reference,
    minimum_spanning_tree,
    mst_kutten_peleg,
)
from repro.congest import RoundLedger, Topology, build_bfs_tree
from repro.core import (
    PartwiseEngine,
    find_shortcut_doubling,
    measure,
)
from repro.graphs import generators, voronoi
from repro.graphs.weights import weighted


def test_quickstart_pipeline():
    """The README quickstart, as a test."""
    topology = generators.grid(8, 8)
    partition = voronoi(topology, 8, seed=1)
    ledger = RoundLedger()
    tree, _ = build_bfs_tree(topology, root=0, ledger=ledger)
    outcome = find_shortcut_doubling(topology, tree, partition, seed=2, ledger=ledger)
    report = measure(outcome.result.shortcut, topology)
    assert report.block_parameter <= 3 * outcome.b
    engine = PartwiseEngine(topology, outcome.result.shortcut, seed=3, ledger=ledger)
    leaders, _ = engine.elect_leaders(3 * outcome.b)
    assert len(leaders) == partition.size
    assert ledger.total_rounds > 0


def test_mst_pipeline_on_three_topologies():
    for base, kwargs in [
        (generators.grid(5, 5), dict(params="genus", genus=0)),
        (generators.torus(5, 5), dict(params="genus", genus=1)),
        (generators.k_tree(20, 2, seed=1), dict(params="doubling")),
    ]:
        topology = weighted(base, seed=5)
        result = minimum_spanning_tree(topology, seed=6, **kwargs)
        assert result.weight == kruskal_reference(topology)[1]


@pytest.mark.skipif(
    not generators.geometry_available(),
    reason="delaunay needs the geometry extra (numpy + scipy)",
)
def test_shortcut_and_baseline_agree_everywhere():
    topology = weighted(generators.delaunay(36, seed=7), seed=7)
    a = minimum_spanning_tree(topology, params="doubling", seed=8)
    b = mst_kutten_peleg(topology, seed=8)
    assert a.edges == b.edges


def test_connectivity_and_mincut_pipeline():
    topology = generators.torus(5, 5)
    cut = approximate_min_cut(topology, seed=9)
    exact = nx.stoer_wagner(topology.to_networkx(), weight=None)[0]
    assert exact <= cut.value <= 3 * exact
    # Remove the found cut: the graph must split into >= 2 components.
    alive = [e for e in topology.edges if e not in cut.cut_edges]
    labelling = connected_components(topology, alive, seed=10)
    assert labelling.components >= 2


def test_round_ledger_is_additive_across_pipeline():
    topology = weighted(generators.grid(4, 4), seed=11)
    result = minimum_spanning_tree(topology, params="doubling", seed=12)
    total = sum(r.rounds + r.barrier_rounds for r in result.ledger.records)
    assert total == result.rounds
