"""Tests for the flat-CSR kernel structures (repro.graphs.csr)."""

import pickle

from repro.congest.topology import canonical_edge
from repro.graphs import generators
from repro.graphs.csr import adjacency_csr, edge_ids, tree_arrays
from repro.graphs.spanning_trees import SpanningTree


def test_adjacency_matches_neighbors(grid6):
    csr = adjacency_csr(grid6)
    assert csr.n == grid6.n
    assert csr.m == grid6.m
    assert csr.indptr[0] == 0
    assert csr.indptr[-1] == 2 * grid6.m
    for v in grid6.nodes:
        assert tuple(csr.neighbors(v)) == grid6.neighbors(v)


def test_edge_ids_are_positions_in_edges(grid6):
    index = edge_ids(grid6)
    assert len(index) == grid6.m
    for i, edge in enumerate(grid6.edges):
        assert index[edge] == i


def test_edge_ids_align_with_adjacency_slots(torus5):
    csr = adjacency_csr(torus5)
    for v in torus5.nodes:
        for k in range(csr.indptr[v], csr.indptr[v + 1]):
            w = csr.indices[k]
            assert torus5.edges[csr.edge_ids[k]] == canonical_edge(v, w)


def test_structures_are_cached(grid6, grid6_tree):
    assert adjacency_csr(grid6) is adjacency_csr(grid6)
    assert edge_ids(grid6) is edge_ids(grid6)
    assert tree_arrays(grid6_tree) is tree_arrays(grid6_tree)


def test_tree_arrays_parent_depth(grid6_tree):
    arrays = tree_arrays(grid6_tree)
    assert arrays.root == grid6_tree.root
    for v in range(grid6_tree.n):
        parent = grid6_tree.parent(v)
        assert arrays.parent[v] == (-1 if parent is None else parent)
        assert arrays.depth[v] == grid6_tree.depth(v)


def test_euler_tour_subtree_slices():
    topology = generators.binary_tree(4)
    tree = SpanningTree.bfs(topology, 0)
    arrays = tree_arrays(tree)
    assert sorted(arrays.preorder) == list(range(tree.n))
    assert arrays.preorder[0] == tree.root
    for v in range(tree.n):
        subtree = set(arrays.subtree(v))
        assert v in subtree
        for child in tree.children(v):
            assert set(arrays.subtree(child)) <= subtree
        expected = {
            w for w in range(tree.n) if v in set(tree.ancestors(w, include_self=True))
        }
        assert subtree == expected


def test_is_ancestor_matches_ancestors(grid6_tree):
    arrays = tree_arrays(grid6_tree)
    for v in (0, 7, 21, 35):
        ancestors = set(grid6_tree.ancestors(v, include_self=True))
        for u in range(grid6_tree.n):
            assert arrays.is_ancestor(u, v) == (u in ancestors)


def test_caches_survive_pickling(grid6, grid6_tree):
    """Worker processes receive topologies with (or without) warm
    caches; both must keep working after a pickle round-trip."""
    adjacency_csr(grid6)
    tree_arrays(grid6_tree)
    topology = pickle.loads(pickle.dumps(grid6))
    tree = pickle.loads(pickle.dumps(grid6_tree))
    csr = adjacency_csr(topology)
    for v in topology.nodes:
        assert tuple(csr.neighbors(v)) == topology.neighbors(v)
    assert tree_arrays(tree).depth == tree_arrays(grid6_tree).depth
