"""Tests for the partition type and generators."""

import pytest

from repro.errors import TopologyError
from repro.graphs import generators
from repro.graphs.partitions import (
    Partition,
    cycle_arcs,
    grid_bands,
    grid_columns,
    grid_rows,
    random_arcs,
    singletons,
    voronoi,
    whole,
)


def test_partition_basic():
    p = Partition(5, [[0, 1], [2, 3]])
    assert p.size == 2
    assert p.part_of(0) == 0
    assert p.part_of(4) is None
    assert p.covered == 4


def test_partition_rejects_overlap():
    with pytest.raises(TopologyError):
        Partition(4, [[0, 1], [1, 2]])


def test_partition_rejects_empty_part():
    with pytest.raises(TopologyError):
        Partition(4, [[0], []])


def test_partition_rejects_bad_node():
    with pytest.raises(TopologyError):
        Partition(3, [[0, 7]])


def test_from_labels_roundtrip():
    p = Partition.from_labels([2, 2, None, 5, 5, 5])
    assert p.size == 2
    assert p.members(0) == frozenset({0, 1})
    assert p.members(1) == frozenset({3, 4, 5})
    assert p.part_of(2) is None


def test_validate_connected_accepts_connected(grid6):
    voronoi(grid6, 5, seed=1).validate_connected(grid6)


def test_validate_connected_rejects_disconnected(grid6):
    p = Partition(36, [[0, 35]])  # two opposite corners
    with pytest.raises(TopologyError):
        p.validate_connected(grid6)


def test_part_diameters(grid6):
    p = grid_rows(6, 6)
    assert p.part_diameters(grid6) == [5] * 6


def test_singletons(grid6):
    p = singletons(grid6)
    assert p.size == 36
    assert all(len(p.members(i)) == 1 for i in range(36))


def test_whole(grid6):
    p = whole(grid6)
    assert p.size == 1
    assert p.covered == 36


def test_grid_rows_and_columns_cover(grid6):
    rows = grid_rows(6, 6)
    cols = grid_columns(6, 6)
    assert rows.covered == cols.covered == 36
    rows.validate_connected(grid6)
    cols.validate_connected(grid6)


def test_grid_bands_height():
    p = grid_bands(6, 6, 2)
    assert p.size == 3
    assert all(len(p.members(i)) == 12 for i in range(3))


def test_grid_bands_uneven():
    p = grid_bands(7, 4, 3)
    assert p.size == 3
    assert len(p.members(2)) == 4  # last band one row


def test_cycle_arcs_structure():
    p = cycle_arcs(64, 8, extra_nodes=1)
    assert p.size == 8
    assert p.covered == 64
    assert p.part_of(64) is None  # hub uncovered


def test_cycle_arcs_contiguous():
    p = cycle_arcs(10, 3)
    for i in range(p.size):
        members = sorted(p.members(i))
        assert members == list(range(members[0], members[-1] + 1))


def test_voronoi_covers_everything(grid6):
    p = voronoi(grid6, 7, seed=2)
    assert p.covered == 36
    p.validate_connected(grid6)


def test_voronoi_part_count(grid6):
    assert voronoi(grid6, 7, seed=2).size == 7


def test_voronoi_bad_count(grid6):
    with pytest.raises(TopologyError):
        voronoi(grid6, 0)
    with pytest.raises(TopologyError):
        voronoi(grid6, 37)


def test_random_arcs_partial_coverage(grid6):
    p = random_arcs(grid6, 5, seed=3)
    assert 0 < p.covered < 36
    p.validate_connected(grid6)


def test_repr(grid6):
    assert "N=6" in repr(grid_rows(6, 6))
