"""Tests for the lower-bound witness family."""

import math

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TopologyError
from repro.graphs.hard_instances import peleg_rubinovich, square_instance


def test_structure_counts():
    inst = peleg_rubinovich(4, 7)
    assert inst.n_paths == 4
    assert inst.path_length == 7
    assert len(inst.paths) == 4
    assert all(len(p) == 8 for p in inst.paths)


def test_connected():
    inst = peleg_rubinovich(5, 5)
    assert nx.is_connected(inst.topology.to_networkx())


def test_paths_are_paths():
    inst = peleg_rubinovich(3, 6)
    for path in inst.paths:
        for a, b in zip(path, path[1:]):
            assert inst.topology.has_edge(a, b)


def test_small_diameter():
    inst = square_instance(8)
    # Diameter is O(log l) via the tree, far below the path length.
    assert inst.topology.diameter() <= 2 * math.ceil(math.log2(9)) + 4


def test_columns_attach_to_all_paths():
    inst = peleg_rubinovich(3, 4)
    # Each column node connects to a single tree leaf; that leaf must
    # touch every path at the same column index.
    for j in range(5):
        leaf_neighbors = set()
        first_col_node = inst.paths[0][j]
        for w in inst.topology.neighbors(first_col_node):
            if w in inst.tree_nodes:
                leaf_neighbors.add(w)
        assert leaf_neighbors, "column not spoked to the tree"
        leaf = leaf_neighbors.pop()
        for i in range(3):
            assert inst.topology.has_edge(leaf, inst.paths[i][j])


def test_square_instance_size():
    inst = square_instance(6)
    assert inst.topology.n >= 6 * 7


def test_invalid_parameters():
    with pytest.raises(TopologyError):
        peleg_rubinovich(0, 5)
    with pytest.raises(TopologyError):
        peleg_rubinovich(5, 0)


# ----------------------------------------------------------------------
# Property tests over sizes + fast-path/reference equivalence
# ----------------------------------------------------------------------

sizes = st.tuples(st.integers(1, 8), st.integers(1, 12))


@settings(max_examples=40, deadline=None)
@given(sizes)
def test_structure_counts_formula(size):
    """Node and edge counts follow the closed form at every size."""
    n_paths, path_length = size
    inst = peleg_rubinovich(n_paths, path_length)
    columns = path_length + 1
    n_leaves = 1
    while n_leaves < columns:
        n_leaves *= 2
    tree_size = 2 * n_leaves - 1
    assert inst.topology.n == n_paths * columns + tree_size
    # Path edges + tree edges + one spoke per (path, column).
    expected_m = (
        n_paths * path_length + (tree_size - 1) + n_paths * columns
    )
    assert inst.topology.m == expected_m
    assert inst.n_paths == n_paths
    assert inst.path_length == path_length
    assert len(inst.tree_nodes) == tree_size
    assert inst.tree_root == n_paths * columns


@settings(max_examples=40, deadline=None)
@given(sizes)
def test_connected_and_small_diameter(size):
    """Connected at every size, with diameter O(log l) via the tree."""
    n_paths, path_length = size
    inst = peleg_rubinovich(n_paths, path_length)
    distances = inst.topology.bfs_distances(inst.tree_root)
    assert min(distances) >= 0  # connected (surplus leaves included)
    depth = math.ceil(math.log2(path_length + 1)) + 1
    # Root -> leaf -> path node; plus the same back up.
    assert max(distances) <= depth + 1
    assert inst.topology.diameter() <= 2 * (depth + 1)


@settings(max_examples=40, deadline=None)
@given(sizes)
def test_spokes_touch_every_path(size):
    """Column j's leaf is adjacent to column j of every path."""
    n_paths, path_length = size
    inst = peleg_rubinovich(n_paths, path_length)
    for j in range(path_length + 1):
        leaves = {
            w
            for w in inst.topology.neighbors(inst.paths[0][j])
            if w in inst.tree_nodes
        }
        assert len(leaves) == 1
        leaf = leaves.pop()
        for i in range(n_paths):
            assert inst.topology.has_edge(leaf, inst.paths[i][j])


@settings(max_examples=40, deadline=None)
@given(sizes)
def test_fast_path_identical_to_reference(size):
    """The array-native emission equals the reference constructor."""
    n_paths, path_length = size
    fast = peleg_rubinovich(n_paths, path_length, fast=True)
    reference = peleg_rubinovich(n_paths, path_length, fast=False)
    assert fast.paths == reference.paths
    assert fast.tree_nodes == reference.tree_nodes
    assert fast.tree_root == reference.tree_root
    assert fast.topology.n == reference.topology.n
    assert fast.topology.edges == reference.topology.edges
    assert all(
        fast.topology.neighbors(v) == reference.topology.neighbors(v)
        for v in range(fast.topology.n)
    )


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 10))
def test_square_instance_equivalence(side):
    fast = square_instance(side)
    reference = square_instance(side, fast=False)
    assert fast.topology.edges == reference.topology.edges
    assert fast.topology.n >= side * (side + 1)
