"""Tests for the lower-bound witness family."""

import math

import networkx as nx
import pytest

from repro.errors import TopologyError
from repro.graphs.hard_instances import peleg_rubinovich, square_instance


def test_structure_counts():
    inst = peleg_rubinovich(4, 7)
    assert inst.n_paths == 4
    assert inst.path_length == 7
    assert len(inst.paths) == 4
    assert all(len(p) == 8 for p in inst.paths)


def test_connected():
    inst = peleg_rubinovich(5, 5)
    assert nx.is_connected(inst.topology.to_networkx())


def test_paths_are_paths():
    inst = peleg_rubinovich(3, 6)
    for path in inst.paths:
        for a, b in zip(path, path[1:]):
            assert inst.topology.has_edge(a, b)


def test_small_diameter():
    inst = square_instance(8)
    # Diameter is O(log l) via the tree, far below the path length.
    assert inst.topology.diameter() <= 2 * math.ceil(math.log2(9)) + 4


def test_columns_attach_to_all_paths():
    inst = peleg_rubinovich(3, 4)
    # Each column node connects to a single tree leaf; that leaf must
    # touch every path at the same column index.
    for j in range(5):
        leaf_neighbors = set()
        first_col_node = inst.paths[0][j]
        for w in inst.topology.neighbors(first_col_node):
            if w in inst.tree_nodes:
                leaf_neighbors.add(w)
        assert leaf_neighbors, "column not spoked to the tree"
        leaf = leaf_neighbors.pop()
        for i in range(3):
            assert inst.topology.has_edge(leaf, inst.paths[i][j])


def test_square_instance_size():
    inst = square_instance(6)
    assert inst.topology.n >= 6 * 7


def test_invalid_parameters():
    with pytest.raises(TopologyError):
        peleg_rubinovich(0, 5)
    with pytest.raises(TopologyError):
        peleg_rubinovich(5, 0)
