"""Tests for workload graph generators."""

import networkx as nx
import pytest

from repro.congest.topology import Topology
from repro.errors import TopologyError
from repro.graphs import generators


def test_path_structure():
    t = generators.path(5)
    assert (t.n, t.m) == (5, 4)
    assert t.diameter() == 4


def test_cycle_structure():
    t = generators.cycle(8)
    assert (t.n, t.m) == (8, 8)
    assert t.diameter() == 4
    assert all(t.degree(v) == 2 for v in t.nodes)


def test_cycle_too_small():
    with pytest.raises(TopologyError):
        generators.cycle(2)


def test_star_structure():
    t = generators.star(7)
    assert t.degree(0) == 6
    assert t.diameter() == 2


def test_complete_structure():
    t = generators.complete(6)
    assert t.m == 15
    assert t.diameter() == 1


def test_binary_tree():
    t = generators.binary_tree(3)
    assert t.n == 15
    assert t.m == 14


def test_grid_structure():
    t = generators.grid(4, 5)
    assert t.n == 20
    assert t.m == 4 * 4 + 3 * 5
    assert t.diameter() == 3 + 4


def test_triangulated_grid_is_planar():
    t = generators.triangulated_grid(4, 4)
    planar, _embedding = nx.check_planarity(t.to_networkx())
    assert planar


def test_grid_is_planar():
    planar, _ = nx.check_planarity(generators.grid(5, 5).to_networkx())
    assert planar


def test_cycle_with_hub_planar_and_small_diameter():
    t = generators.cycle_with_hub(64, 8)
    planar, _ = nx.check_planarity(t.to_networkx())
    assert planar
    assert t.diameter() <= 8 + 4


def test_cycle_with_hub_bad_spokes():
    with pytest.raises(TopologyError):
        generators.cycle_with_hub(10, 0)


@pytest.mark.skipif(
    not generators.geometry_available(),
    reason="delaunay needs the geometry extra (numpy + scipy)",
)
def test_delaunay_planar_connected():
    t = generators.delaunay(80, seed=1)
    assert t.n == 80
    planar, _ = nx.check_planarity(t.to_networkx())
    assert planar


def test_delaunay_missing_geometry_extra_hint(monkeypatch):
    # Simulate the geometry extra being absent: a None entry makes
    # `import numpy` raise ImportError, and the generator must convert
    # that into a TopologyError carrying the install hint.
    import sys

    monkeypatch.setitem(sys.modules, "numpy", None)
    with pytest.raises(TopologyError, match="geometry"):
        generators.delaunay(10, seed=1)


def test_torus_regular_degree_four():
    t = generators.torus(5, 6)
    assert all(t.degree(v) == 4 for v in t.nodes)


def test_torus_not_planar():
    planar, _ = nx.check_planarity(generators.torus(5, 5).to_networkx())
    assert not planar


def test_torus_too_small():
    with pytest.raises(TopologyError):
        generators.torus(2, 5)


def test_genus_chain_zero_is_grid():
    t = generators.genus_chain(0, 4, 4)
    assert t.n == 16
    planar, _ = nx.check_planarity(t.to_networkx())
    assert planar


def test_genus_chain_node_count_and_connectivity():
    t = generators.genus_chain(3, 4, 4)
    assert t.n == 3 * 16
    assert nx.is_connected(t.to_networkx())


def test_genus_chain_has_bridges():
    t = generators.genus_chain(2, 3, 3)
    bridges = list(nx.bridges(t.to_networkx()))
    assert len(bridges) == 1  # one bridge per junction


def test_k_tree_clique_count():
    t = generators.k_tree(30, 2, seed=1)
    assert t.n == 30
    # A k-tree on n nodes has k*n - k*(k+1)/2 edges.
    assert t.m == 2 * 30 - 3


def test_k_tree_too_small():
    with pytest.raises(TopologyError):
        generators.k_tree(2, 3)


def test_series_parallel_connected():
    t = generators.series_parallel(40, seed=5)
    assert nx.is_connected(t.to_networkx())


def test_erdos_renyi_connected_always():
    for seed in range(5):
        t = generators.erdos_renyi_connected(40, 0.02, seed=seed)
        assert nx.is_connected(t.to_networkx())


def test_random_regular_degree():
    t = generators.random_regular(20, 4, seed=3)
    assert all(t.degree(v) == 4 for v in t.nodes)


def test_grid_node_indexing():
    assert generators.grid_node(2, 3, 5) == 13


def test_clique_caterpillar_structure():
    t = generators.clique_caterpillar(12, 3)
    assert t.n == 12
    # Windows of 4 consecutive nodes form cliques.
    assert t.has_edge(0, 3)
    assert not t.has_edge(0, 4)
    import networkx as nx

    assert nx.is_connected(t.to_networkx())


def test_clique_caterpillar_width_one_is_path():
    t = generators.clique_caterpillar(8, 1)
    assert t.m == 7
    assert t.diameter() == 7


def test_clique_caterpillar_validation():
    import pytest as _pytest

    with _pytest.raises(TopologyError):
        generators.clique_caterpillar(3, 0)
    with _pytest.raises(TopologyError):
        generators.clique_caterpillar(3, 3)
