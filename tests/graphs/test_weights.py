"""Tests for weight assignments."""

from repro.graphs import generators
from repro.graphs.weights import (
    hub_adversarial_weights,
    perturbed_weights,
    unique_random_weights,
    weighted,
)


def test_unique_random_weights_are_a_bijection(grid6):
    weights = unique_random_weights(grid6, seed=1)
    assert sorted(weights.values()) == list(range(1, grid6.m + 1))
    assert set(weights) == set(grid6.edges)


def test_unique_random_weights_seeded(grid6):
    assert unique_random_weights(grid6, 1) == unique_random_weights(grid6, 1)
    assert unique_random_weights(grid6, 1) != unique_random_weights(grid6, 2)


def test_weighted_attaches(grid6):
    t = weighted(grid6, seed=4)
    assert t.is_weighted
    assert t.n == grid6.n


def test_perturbed_preserves_order(grid6):
    base = {edge: (1 if edge[0] == 0 else 5) for edge in grid6.edges}
    out = perturbed_weights(grid6, base)
    light = [out[e] for e in grid6.edges if e[0] == 0]
    heavy = [out[e] for e in grid6.edges if e[0] != 0]
    assert max(light) < min(heavy)


def test_perturbed_all_unique(grid6):
    base = {edge: 7 for edge in grid6.edges}
    out = perturbed_weights(grid6, base)
    assert len(set(out.values())) == grid6.m


def test_hub_adversarial_cycle_lighter_than_spokes():
    t = generators.cycle_with_hub(32, 4)
    w = hub_adversarial_weights(t, 32, seed=2)
    cycle_max = max(
        w.weight(u, v) for u, v in w.edges if u < 32 and v < 32
    )
    spoke_min = min(
        w.weight(u, v) for u, v in w.edges if u >= 32 or v >= 32
    )
    assert cycle_max < spoke_min


def test_hub_adversarial_mst_is_mostly_cycle():
    from repro.apps.mst import kruskal_reference

    t = generators.cycle_with_hub(32, 4)
    w = hub_adversarial_weights(t, 32, seed=2)
    edges, _weight = kruskal_reference(w)
    spoke_edges = [e for e in edges if e[0] >= 32 or e[1] >= 32]
    assert len(spoke_edges) == 1  # hub hangs off one spoke only
