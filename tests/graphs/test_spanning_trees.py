"""Tests for rooted spanning trees."""

import pytest

from repro.errors import TopologyError
from repro.graphs import generators
from repro.graphs.spanning_trees import SpanningTree


@pytest.fixture
def small_tree():
    #      0
    #     / \
    #    1   2
    #   / \   \
    #  3   4   5
    return SpanningTree(0, [-1, 0, 0, 1, 1, 2])


def test_basic_structure(small_tree):
    assert small_tree.root == 0
    assert small_tree.height == 2
    assert small_tree.parent(3) == 1
    assert small_tree.parent(0) is None
    assert small_tree.children(1) == (3, 4)
    assert small_tree.depth(5) == 2


def test_edges_canonical(small_tree):
    assert (0, 1) in small_tree.edges
    assert (1, 3) in small_tree.edges
    assert len(small_tree.edges) == 5


def test_parent_edge(small_tree):
    assert small_tree.parent_edge(4) == (1, 4)
    assert small_tree.parent_edge(0) is None


def test_is_tree_edge(small_tree):
    assert small_tree.is_tree_edge(3, 1)
    assert not small_tree.is_tree_edge(3, 4)


def test_ancestors(small_tree):
    assert list(small_tree.ancestors(3)) == [1, 0]
    assert list(small_tree.ancestors(3, include_self=True)) == [3, 1, 0]
    assert list(small_tree.ancestors(0)) == []


def test_path_to_root_edges(small_tree):
    assert list(small_tree.path_to_root_edges(4)) == [(1, 4), (0, 1)]


def test_order_bottom_up(small_tree):
    order = small_tree.order_bottom_up()
    position = {v: i for i, v in enumerate(order)}
    for v in range(1, 6):
        assert position[v] < position[small_tree.parent(v)]


def test_subtree_sizes(small_tree):
    sizes = small_tree.subtree_sizes()
    assert sizes[0] == 6
    assert sizes[1] == 3
    assert sizes[5] == 1


def test_lower_endpoint(small_tree):
    assert small_tree.lower_endpoint((0, 1)) == 1
    assert small_tree.lower_endpoint((1, 4)) == 4
    with pytest.raises(TopologyError):
        small_tree.lower_endpoint((3, 4))


def test_rejects_cycle():
    with pytest.raises(TopologyError):
        SpanningTree(0, [-1, 2, 1])  # 1 and 2 point at each other


def test_rejects_double_root():
    with pytest.raises(TopologyError):
        SpanningTree(0, [-1, -1, 0])


def test_rejects_root_with_parent():
    with pytest.raises(TopologyError):
        SpanningTree(0, [1, -1, 1])  # node 0 claims parent but is root


def test_none_parent_accepted_for_root():
    tree = SpanningTree(1, [1, None, 1])
    assert tree.root == 1
    assert tree.parent(1) is None


def test_bfs_optimal_depth(grid6):
    tree = SpanningTree.bfs(grid6, 0)
    assert tree.height == grid6.eccentricity(0)
    tree.validate_in(grid6)


def test_validate_in_rejects_foreign_edges(grid6):
    # A "tree" using a non-grid edge (0, 35).
    parent = [(-1 if v == 0 else 0) for v in range(36)]
    tree = SpanningTree(0, parent)
    with pytest.raises(TopologyError):
        tree.validate_in(grid6)


def test_bfs_on_disconnected_raises():
    from repro.congest.topology import Topology

    t = Topology(4, [(0, 1), (2, 3)], require_connected=False)
    with pytest.raises(TopologyError):
        SpanningTree.bfs(t, 0)
