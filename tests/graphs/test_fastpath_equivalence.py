"""Differential conformance: array-native instance pipeline vs reference.

Every fast path introduced by the instance pipeline — the
``Topology.from_arrays`` / ``from_csr`` constructors, the array-twin
generators, the CSR BFS spanning tree, and the dense-label partitions —
is pinned here ``==``-identical to its reference twin: same edges, same
adjacency, same weights, same tree parents/children/depths, same
partition labels.  This suite is what licenses the fast paths as the
generator defaults — any divergence from the validating constructors is
a bug here before it is a wrong instance in an experiment table.
"""

import pytest

from repro.congest.topology import Topology
from repro.errors import TopologyError
from repro.graphs import generators, partitions
from repro.graphs.csr import adjacency_csr, bfs_spanning_tree, tree_arrays
from repro.graphs.hard_instances import peleg_rubinovich
from repro.graphs.spanning_trees import SpanningTree
from repro.graphs.weights import weighted

# (name, builder) — builder(fast) returns the topology.
GENERATORS = {
    "grid": lambda fast: generators.grid(7, 9, fast=fast),
    "grid-row": lambda fast: generators.grid(1, 6, fast=fast),
    "grid-col": lambda fast: generators.grid(6, 1, fast=fast),
    "torus-min": lambda fast: generators.torus(3, 3, fast=fast),
    "torus": lambda fast: generators.torus(5, 7, fast=fast),
    "genus0": lambda fast: generators.genus_chain(0, 4, 5, fast=fast),
    "genus3": lambda fast: generators.genus_chain(3, 3, 4, fast=fast),
    "hub": lambda fast: generators.cycle_with_hub(40, 8, fast=fast),
    "hub-dense": lambda fast: generators.cycle_with_hub(9, 1, fast=fast),
    "k_tree": lambda fast: generators.k_tree(40, 4, seed=3, fast=fast),
    "peleg_rubinovich": lambda fast: peleg_rubinovich(5, 7, fast=fast).topology,
    "peleg-min": lambda fast: peleg_rubinovich(1, 1, fast=fast).topology,
}


def assert_topologies_identical(fast, reference):
    assert fast.n == reference.n
    assert fast.m == reference.m
    assert fast.edges == reference.edges
    for v in range(fast.n):
        assert fast.neighbors(v) == reference.neighbors(v)
        assert fast.degree(v) == reference.degree(v)
    assert fast.is_weighted == reference.is_weighted
    if fast.is_weighted:
        for u, v in reference.edges:
            assert fast.weight(u, v) == reference.weight(u, v)


@pytest.mark.parametrize("name", sorted(GENERATORS))
def test_generator_fast_path_identical(name):
    build = GENERATORS[name]
    assert_topologies_identical(build(True), build(False))


@pytest.mark.parametrize("name", sorted(GENERATORS))
def test_generator_fast_path_seeds_csr(name):
    topology = GENERATORS[name](True)
    assert "csr" in topology._kernels
    csr = adjacency_csr(topology)
    for v in range(topology.n):
        assert tuple(csr.neighbors(v)) == topology.neighbors(v)
    # Edge ids are the canonical dense positions.
    for v in range(topology.n):
        for k in range(csr.indptr[v], csr.indptr[v + 1]):
            w = csr.indices[k]
            edge = (v, w) if v < w else (w, v)
            assert topology.edges[csr.edge_ids[k]] == edge


@pytest.mark.parametrize("name", sorted(GENERATORS))
def test_csr_matches_reference_topology_csr(name):
    build = GENERATORS[name]
    fast_csr = adjacency_csr(build(True))
    ref_csr = adjacency_csr(build(False))
    assert fast_csr.indptr == ref_csr.indptr
    assert fast_csr.indices == ref_csr.indices
    assert fast_csr.edge_ids == ref_csr.edge_ids


@pytest.mark.parametrize("name", sorted(GENERATORS))
@pytest.mark.parametrize("root", [0, 1])
def test_bfs_spanning_tree_identical(name, root):
    topology = GENERATORS[name](True)
    fast = bfs_spanning_tree(topology, root)
    reference = SpanningTree.bfs(GENERATORS[name](False), root)
    assert fast.root == reference.root
    assert fast.height == reference.height
    assert [fast.parent(v) for v in range(topology.n)] == [
        reference.parent(v) for v in range(topology.n)
    ]
    for v in range(topology.n):
        assert fast.children(v) == reference.children(v)
        assert fast.depth(v) == reference.depth(v)
    assert fast.edges == reference.edges


def test_bfs_spanning_tree_precaches_tree_arrays():
    topology = generators.grid(6, 6)
    tree = bfs_spanning_tree(topology, 0)
    assert "arrays" in tree._kernels
    arrays = tree_arrays(tree)
    assert arrays is tree._kernels["arrays"]
    reference = tree_arrays(SpanningTree.bfs(topology, 0))
    assert arrays.parent == reference.parent
    assert arrays.preorder == reference.preorder
    assert arrays.tour_in == reference.tour_in
    assert arrays.tour_out == reference.tour_out


def test_bfs_spanning_tree_disconnected_raises():
    topology = Topology(4, [(0, 1), (2, 3)], require_connected=False)
    with pytest.raises(TopologyError):
        bfs_spanning_tree(topology, 0)


# ----------------------------------------------------------------------
# Topology.from_arrays / from_csr validation
# ----------------------------------------------------------------------


def test_from_arrays_matches_reference_constructor():
    edges = [(0, 1), (0, 2), (1, 2), (2, 3)]
    assert_topologies_identical(
        Topology.from_arrays(4, edges), Topology(4, edges)
    )


def test_from_arrays_rejects_unsorted():
    with pytest.raises(TopologyError):
        Topology.from_arrays(4, [(1, 2), (0, 1), (2, 3)])


def test_from_arrays_rejects_duplicates():
    with pytest.raises(TopologyError):
        Topology.from_arrays(4, [(0, 1), (0, 1), (1, 2), (2, 3)])


def test_from_arrays_rejects_non_canonical():
    with pytest.raises(TopologyError):
        Topology.from_arrays(3, [(1, 0), (1, 2)])


def test_from_arrays_rejects_self_loop_and_range():
    with pytest.raises(TopologyError):
        Topology.from_arrays(3, [(1, 1)])
    with pytest.raises(TopologyError):
        Topology.from_arrays(3, [(0, 3)])


def test_from_arrays_rejects_disconnected_by_default():
    with pytest.raises(TopologyError):
        Topology.from_arrays(4, [(0, 1), (2, 3)])
    t = Topology.from_arrays(4, [(0, 1), (2, 3)], require_connected=False)
    assert t.m == 2


def test_from_arrays_single_node():
    t = Topology.from_arrays(1, [])
    assert t.n == 1 and t.m == 0


def test_from_arrays_weights_trusted():
    t = Topology.from_arrays(3, [(0, 1), (1, 2)], weights={(0, 1): 5})
    assert t.is_weighted
    assert t.weight(0, 1) == 5
    assert t.weight(1, 2) == 1


def test_from_csr_rejects_malformed_edge_ids():
    csr = adjacency_csr(generators.grid(3, 3))
    broken = type(csr).from_edges(csr.n, generators.grid(3, 3).edges)
    broken.edge_ids = [eid + csr.m for eid in broken.edge_ids]
    with pytest.raises(TopologyError):
        Topology.from_csr(broken)


def test_from_csr_round_trip():
    base = generators.grid(5, 6)
    csr = adjacency_csr(base)
    rebuilt = Topology.from_csr(csr)
    assert_topologies_identical(rebuilt, base)
    # The CSR object itself is seeded into the new topology's cache.
    assert adjacency_csr(rebuilt) is csr


def test_with_weights_shares_structure_and_validates():
    base = generators.grid(5, 5)
    csr = adjacency_csr(base)
    heavy = weighted(base, seed=9)
    assert heavy.edges is base.edges
    assert adjacency_csr(heavy) is csr
    reference = Topology(
        base.n, base.edges, weights={e: heavy.weight(*e) for e in base.edges}
    )
    assert_topologies_identical(heavy, reference)
    with pytest.raises(TopologyError):
        base.with_weights({(0, 24): 3})  # not an edge


# ----------------------------------------------------------------------
# Partition fast paths
# ----------------------------------------------------------------------


def assert_partitions_identical(fast, reference):
    assert fast.n == reference.n
    assert fast.size == reference.size
    assert fast.covered == reference.covered
    assert fast.labels == reference.labels
    assert fast.parts == reference.parts


PARTITION_CASES = {
    "voronoi": lambda fast: partitions.voronoi(
        generators.grid(7, 9), 6, seed=2, fast=fast
    ),
    "voronoi-full": lambda fast: partitions.voronoi(
        generators.torus(5, 5), 25, seed=1, fast=fast
    ),
    "rows": lambda fast: partitions.grid_rows(7, 9, fast=fast),
    "bands": lambda fast: partitions.grid_bands(7, 9, 3, fast=fast),
    "columns": lambda fast: partitions.grid_columns(7, 9, fast=fast),
    "arcs": lambda fast: partitions.cycle_arcs(64, 8, 1, fast=fast),
    "arcs-rounding": lambda fast: partitions.cycle_arcs(10, 7, fast=fast),
}


@pytest.mark.parametrize("name", sorted(PARTITION_CASES))
def test_partition_fast_path_identical(name):
    build = PARTITION_CASES[name]
    assert_partitions_identical(build(True), build(False))


def test_from_dense_labels_matches_from_labels():
    labels = [0, 0, 1, -1, 2, 1, 2]
    fast = partitions.Partition.from_dense_labels(labels, 3)
    reference = partitions.Partition.from_labels(
        [None if x == -1 else x for x in labels]
    )
    assert_partitions_identical(fast, reference)


def test_from_dense_labels_infers_part_count():
    p = partitions.Partition.from_dense_labels([0, 1, 1, -1])
    assert p.size == 2
    assert p.covered == 3


def test_from_dense_labels_rejects_empty_part():
    with pytest.raises(TopologyError):
        partitions.Partition.from_dense_labels([0, 0, 2], 3)


def test_from_dense_labels_rejects_out_of_range_label():
    with pytest.raises(TopologyError):
        partitions.Partition.from_dense_labels([0, 5], 2)


def test_reference_constructor_still_validates():
    with pytest.raises(TopologyError):
        partitions.Partition(4, [[0, 1], [1, 2]])  # overlap
    with pytest.raises(TopologyError):
        partitions.Partition(4, [[0], []])  # empty part
    with pytest.raises(TopologyError):
        partitions.Partition(3, [[0, 7]])  # out of range
    # Duplicates within one part collapse (frozenset semantics).
    p = partitions.Partition(4, [[0, 0, 1], [2]])
    assert p.members(0) == frozenset({0, 1})
    assert p.covered == 3
