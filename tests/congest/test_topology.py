"""Tests for the Topology representation."""

import pytest

from repro.congest.topology import Topology, canonical_edge
from repro.errors import TopologyError


def test_canonical_edge_orders_endpoints():
    assert canonical_edge(5, 2) == (2, 5)
    assert canonical_edge(2, 5) == (2, 5)


def test_canonical_edge_rejects_self_loop():
    with pytest.raises(TopologyError):
        canonical_edge(3, 3)


def test_basic_construction():
    t = Topology(3, [(0, 1), (1, 2)])
    assert t.n == 3
    assert t.m == 2
    assert t.edges == ((0, 1), (1, 2))


def test_duplicate_and_reversed_edges_collapse():
    t = Topology(3, [(0, 1), (1, 0), (0, 1), (1, 2)])
    assert t.m == 2


def test_out_of_range_edge_rejected():
    with pytest.raises(TopologyError):
        Topology(3, [(0, 3)])


def test_disconnected_rejected_by_default():
    with pytest.raises(TopologyError):
        Topology(4, [(0, 1), (2, 3)])


def test_disconnected_allowed_when_requested():
    t = Topology(4, [(0, 1), (2, 3)], require_connected=False)
    assert t.m == 2


def test_neighbors_sorted():
    t = Topology(4, [(2, 0), (0, 3), (0, 1)])
    assert t.neighbors(0) == (1, 2, 3)


def test_degree():
    t = Topology(4, [(0, 1), (0, 2), (0, 3)])
    assert t.degree(0) == 3
    assert t.degree(1) == 1


def test_has_edge():
    t = Topology(3, [(0, 1), (1, 2)])
    assert t.has_edge(1, 0)
    assert not t.has_edge(0, 2)
    assert not t.has_edge(1, 1)


def test_default_weights_are_one():
    t = Topology(2, [(0, 1)])
    assert not t.is_weighted
    assert t.weight(0, 1) == 1


def test_explicit_weights():
    t = Topology(3, [(0, 1), (1, 2)], weights={(1, 0): 7, (1, 2): 9})
    assert t.is_weighted
    assert t.weight(0, 1) == 7
    assert t.weight(2, 1) == 9


def test_weight_for_nonedge_rejected():
    with pytest.raises(TopologyError):
        Topology(3, [(0, 1), (1, 2)], weights={(0, 2): 4})


def test_weight_lookup_nonedge_raises():
    t = Topology(3, [(0, 1), (1, 2)])
    with pytest.raises(TopologyError):
        t.weight(0, 2)


def test_with_weights_copies():
    t = Topology(2, [(0, 1)])
    w = t.with_weights({(0, 1): 5})
    assert w.weight(0, 1) == 5
    assert t.weight(0, 1) == 1


def test_bfs_distances_path():
    t = Topology(4, [(0, 1), (1, 2), (2, 3)])
    assert t.bfs_distances(0) == [0, 1, 2, 3]
    assert t.bfs_distances(2) == [2, 1, 0, 1]


def test_eccentricity_and_diameter():
    t = Topology(5, [(i, i + 1) for i in range(4)])
    assert t.eccentricity(0) == 4
    assert t.eccentricity(2) == 2
    assert t.diameter() == 4


def test_diameter_estimate_on_tree_is_exact():
    # Double sweep is exact on trees.
    t = Topology(7, [(0, 1), (1, 2), (2, 3), (2, 4), (4, 5), (5, 6)])
    assert t.diameter(exact=False) == t.diameter(exact=True)


def test_networkx_roundtrip():
    import networkx as nx

    g = nx.Graph()
    g.add_edge("b", "a", weight=3)
    g.add_edge("b", "c", weight=4)
    t = Topology.from_networkx(g)
    assert t.n == 3
    assert t.weight(0, 1) == 3  # a-b
    back = t.to_networkx()
    assert back.number_of_edges() == 2
    assert back[0][1]["weight"] == 3


def test_len_and_iter():
    t = Topology(3, [(0, 1), (1, 2)])
    assert len(t) == 3
    assert list(t) == [0, 1, 2]


def test_single_node_topology():
    t = Topology(1, [])
    assert t.n == 1
    assert t.m == 0
    assert t.diameter() == 0
