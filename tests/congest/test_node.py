"""Tests for the NodeHandle API surface."""

import pytest

from repro.congest.algorithm import NodeAlgorithm
from repro.congest.simulator import Simulator, run_algorithm
from repro.congest.topology import Topology
from repro.errors import SimulationError


@pytest.fixture
def pair():
    return Topology(2, [(0, 1)])


def test_degree_and_neighbors(pair):
    class Inspect(NodeAlgorithm):
        def on_start(self, node):
            node.state.degree = node.degree
            node.state.neighbors = node.neighbors

    result = run_algorithm(pair, Inspect())
    assert result.states[0].degree == 1
    assert result.states[0].neighbors == (1,)


def test_round_property(pair):
    class Rounds(NodeAlgorithm):
        def on_start(self, node):
            node.state.start_round = node.round
            if node.id == 0:
                node.send(1, ("x",))

        def on_round(self, node, messages):
            node.state.seen_round = node.round

    result = run_algorithm(pair, Rounds())
    assert result.states[0].start_round == 0
    assert result.states[1].seen_round == 1


def test_wake_after_positive_only(pair):
    class Bad(NodeAlgorithm):
        def on_start(self, node):
            node.wake_after(0)

    with pytest.raises(SimulationError):
        run_algorithm(pair, Bad())


def test_wake_after_schedules_relative(pair):
    class Delayed(NodeAlgorithm):
        def on_start(self, node):
            node.state.woke = None
            if node.id == 0:
                node.wake_after(7)

        def on_round(self, node, messages):
            node.state.woke = node.round

    result = run_algorithm(pair, Delayed())
    assert result.states[0].woke == 7


def test_halted_property(pair):
    class HaltOne(NodeAlgorithm):
        def on_start(self, node):
            if node.id == 0:
                node.halt()
            node.state.flag = node.halted

    result = run_algorithm(pair, HaltOne())
    assert result.states[0].flag is True
    assert result.states[1].flag is False


def test_repr_mentions_id(pair):
    class Stash(NodeAlgorithm):
        def on_start(self, node):
            node.state.text = repr(node)

    result = run_algorithm(pair, Stash())
    assert "id=0" in result.states[0].text


def test_state_namespace_isolated(pair):
    class Grow(NodeAlgorithm):
        def on_start(self, node):
            node.state.mine = [node.id]

    result = run_algorithm(pair, Grow())
    assert result.states[0].mine == [0]
    assert result.states[1].mine == [1]
