"""Chaos-differential sweep: the identical-or-detected contract.

The acceptance criterion for the fault stack: across at least three
graph families × three drop rates × five seeds, every reliable run is
bit-identical to its fault-free reference or ends as a declared
detection — :class:`~repro.congest.chaos.ChaosViolation` otherwise.
"""

import pytest

from repro.congest.chaos import (
    CHAOS_FAMILIES,
    ChaosViolation,
    run_cell,
    run_congest_chaos,
    _crash_plan,
    _transport_plan,
)


def test_chaos_sweep_three_families_three_rates_five_seeds():
    report = run_congest_chaos(
        seeds=range(5),
        rates=(0.02, 0.05, 0.1),
        families=("grid", "torus", "hub"),
        workloads=("flood",),
        include_crashes=True,
    )
    # 3 families x 3 rates x 5 seeds transport cells + 3 x 5 crash cells.
    assert len(report.cells) == 60
    assert report.identical == 45
    assert report.detected == 15
    assert "0 silent divergences" in report.summary()


def test_chaos_covers_delaunay_and_token_workload():
    report = run_congest_chaos(
        seeds=range(2),
        rates=(0.05,),
        families=("delaunay",),
        workloads=("token",),
        include_crashes=False,
    )
    assert report.identical == len(report.cells) == 2


def test_crash_cells_always_detect():
    for seed in range(5):
        topology = CHAOS_FAMILIES["grid"]()
        plan = _crash_plan(seed, topology.n, 0.02)
        cell = run_cell("grid", "flood", plan, seed=seed, max_retries=6)
        assert cell.outcome == "detected", (seed, cell)
        assert cell.detail


def test_transport_cells_record_overhead():
    cell = run_cell("hub", "flood", _transport_plan(17, 0.05), seed=1)
    assert cell.outcome == "identical"
    assert cell.physical_rounds >= cell.reference_rounds
    assert cell.overhead >= 1.0


def test_unknown_family_or_workload_rejected():
    with pytest.raises(ValueError):
        run_congest_chaos(families=("nope",), seeds=(0,))
    with pytest.raises(ValueError):
        run_congest_chaos(workloads=("nope",), seeds=(0,))


def test_cli_smoke(capsys):
    from repro.congest.chaos import main

    code = main(
        ["--seeds", "1", "--rates", "0.05", "--families", "grid",
         "--workloads", "flood", "--no-crashes"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "1 cells" in out


def test_chaos_violation_is_assertion_error():
    assert issubclass(ChaosViolation, AssertionError)
