"""Tests for distributed BFS tree construction."""

import pytest

from repro.congest.bfs import build_bfs_tree
from repro.congest.trace import RoundLedger
from repro.graphs import generators


@pytest.mark.parametrize("root", [0, 7, 35])
def test_bfs_depths_match_distances(grid6, root):
    tree, _result = build_bfs_tree(grid6, root)
    dist = grid6.bfs_distances(root)
    for v in grid6.nodes:
        assert tree.depth(v) == dist[v]


def test_bfs_tree_edges_are_graph_edges(grid6):
    tree, _result = build_bfs_tree(grid6, 0)
    tree.validate_in(grid6)


def test_bfs_rounds_linear_in_depth(grid6):
    tree, result = build_bfs_tree(grid6, 0)
    assert result.rounds <= 2 * tree.height + 2


def test_bfs_no_messages_to_halted(grid6):
    _tree, result = build_bfs_tree(grid6, 0)
    assert result.dropped_to_halted == 0


def test_bfs_on_path():
    path = generators.path(10)
    tree, _ = build_bfs_tree(path, 0)
    assert tree.height == 9
    assert tree.parent(9) == 8


def test_bfs_on_star():
    star = generators.star(12)
    tree, _ = build_bfs_tree(star, 0)
    assert tree.height == 1
    assert all(tree.parent(v) == 0 for v in range(1, 12))


def test_bfs_parent_is_min_id_in_previous_layer():
    # Node 3 in a 4-cycle has neighbors 0 and 2 at distance... build a
    # diamond where the tie matters: 0-1, 0-2, 1-3, 2-3.
    from repro.congest.topology import Topology

    diamond = Topology(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
    tree, _ = build_bfs_tree(diamond, 0)
    assert tree.parent(3) == 1  # min-id tie-break


def test_bfs_matches_centralized(grid6):
    from repro.graphs.spanning_trees import SpanningTree

    tree, _ = build_bfs_tree(grid6, 0)
    central = SpanningTree.bfs(grid6, 0)
    # Depths agree even if parent choice could differ.
    for v in grid6.nodes:
        assert tree.depth(v) == central.depth(v)


def test_bfs_ledger_accounting(grid6):
    ledger = RoundLedger()
    tree, result = build_bfs_tree(grid6, 0, ledger=ledger)
    assert ledger.barrier_depth == tree.height
    assert ledger.simulated_rounds == result.rounds
    assert ledger.total_rounds > result.rounds  # barrier charged


def test_bfs_single_node():
    from repro.congest.topology import Topology

    one = Topology(1, [])
    tree, result = build_bfs_tree(one, 0)
    assert tree.height == 0
    assert result.rounds == 0
