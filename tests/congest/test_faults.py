"""Seeded fault injection: determinism, engine independence, crashes.

The load-bearing property of :mod:`repro.congest.faults` is that every
fault decision is a pure function of ``(plan.seed, round, sender,
receiver, copy)`` — never of engine internals or arrival order.  These
tests pin that down: identical faulty runs across repeats and across
inner engines, fault-free plans that change nothing, crash-stop
schedules that halt nodes and count their dropped traffic, and the
``faults=`` axis plumbing.
"""

import pytest

from repro.congest.faults import (
    FaultPlan,
    faults_parameter,
    get_default_faults,
    set_default_faults,
    using_faults,
)
from repro.congest.simulator import Simulator
from repro.congest.workloads import (
    AlarmStormAlgorithm,
    FloodAlgorithm,
    NeighborScanAlgorithm,
    TokenWalkAlgorithm,
)
from repro.errors import SimulationError
from repro.graphs import generators

LOSSY = FaultPlan(
    seed=7, p_drop=0.1, p_duplicate=0.05, p_delay=0.05, p_reorder=0.2
)


def _states(result):
    return {v: vars(s) for v, s in result.states.items()}


# ----------------------------------------------------------------------
# FaultPlan: validation, coins, derivation
# ----------------------------------------------------------------------


def test_plan_rejects_bad_probabilities():
    with pytest.raises(SimulationError):
        FaultPlan(p_drop=1.5)
    with pytest.raises(SimulationError):
        FaultPlan(p_delay=-0.1)
    with pytest.raises(SimulationError):
        FaultPlan(max_delay=-1)


def test_plan_coins_are_deterministic_and_seed_sensitive():
    plan = FaultPlan(seed=3, p_drop=0.5, p_delay=0.5)
    other = plan.reseed(4)
    grid = [
        (r, s, t) for r in range(6) for s in range(4) for t in range(4)
    ]
    first = [(plan.drops(*c), plan.delay(*c)) for c in grid]
    second = [(plan.drops(*c), plan.delay(*c)) for c in grid]
    assert first == second
    assert first != [(other.drops(*c), other.delay(*c)) for c in grid]


def test_plan_delay_respects_max_delay():
    plan = FaultPlan(seed=1, p_delay=1.0, max_delay=2)
    lags = {
        plan.delay(r, s, t)
        for r in range(8)
        for s in range(4)
        for t in range(4)
    }
    assert lags <= {1, 2} and lags


def test_plan_crashes_canonicalised_and_described():
    plan = FaultPlan(seed=2, crashes=((5, 3), (1, 2)), p_drop=0.25)
    assert plan.crashes == ((1, 2), (5, 3))
    assert plan.crash_round(5) == 3
    assert plan.crash_round(0) is None
    assert "drop=0.25" in plan.describe()
    assert "crashes=2" in plan.describe()
    assert "reliable" in plan.with_reliable().describe()


def test_with_reliable_round_trips():
    plan = FaultPlan(seed=9, p_drop=0.1)
    assert not plan.reliable
    assert plan.with_reliable().reliable
    assert not plan.with_reliable().with_reliable(False).reliable


# ----------------------------------------------------------------------
# FaultyEngine: clean plans change nothing, faulty runs are engine-free
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "make",
    [
        lambda: FloodAlgorithm(rounds=4),
        lambda: NeighborScanAlgorithm(rounds=4),
        lambda: TokenWalkAlgorithm(steps=12),
    ],
)
def test_zero_probability_plan_matches_clean_run(make):
    topology = generators.grid(4, 4)
    clean = Simulator(topology, make(), seed=5).run()
    faulted = Simulator(topology, make(), seed=5, faults=FaultPlan(seed=5)).run()
    assert faulted.rounds == clean.rounds
    assert faulted.messages == clean.messages
    assert _states(faulted) == _states(clean)


@pytest.mark.parametrize(
    "make",
    [
        lambda: FloodAlgorithm(rounds=4),
        lambda: TokenWalkAlgorithm(steps=10),
        lambda: AlarmStormAlgorithm(period=3, ticks=3),
    ],
)
def test_faulty_run_identical_across_inner_engines(make):
    topology = generators.cycle_with_hub(20, 4)
    outcomes = {}
    for inner in ("reference", "batched"):
        result = Simulator(
            topology, make(), seed=11, faults=LOSSY, engine=inner
        ).run()
        outcomes[inner] = result
    ref, bat = outcomes["reference"], outcomes["batched"]
    assert ref.rounds == bat.rounds
    assert ref.messages == bat.messages
    assert _states(ref) == _states(bat)


def test_faulty_run_is_reproducible_and_counts_faults():
    topology = generators.grid(5, 5)
    runs = [
        Simulator(
            topology, FloodAlgorithm(rounds=5), seed=3, faults=LOSSY
        )
        for _ in range(2)
    ]
    results = [sim.run() for sim in runs]
    assert _states(results[0]) == _states(results[1])
    stats = runs[0].fault_stats
    assert stats.as_dict() == runs[1].fault_stats.as_dict()
    assert stats.dropped > 0
    assert stats.duplicated > 0
    assert stats.delivered > 0


def test_crash_stop_halts_node_and_counts_dropped_traffic():
    topology = generators.grid(4, 4)
    plan = FaultPlan(seed=1, crashes=((5, 2),))
    sim = Simulator(topology, FloodAlgorithm(rounds=6), seed=2, faults=plan)
    result = sim.run()
    assert sim.fault_stats.crashed_nodes == 1
    # Neighbors keep flooding at the dead node: its traffic is dropped
    # and counted, both in the engine total and the crash-specific
    # counter.
    assert sim.fault_stats.dropped_to_crashed > 0
    assert result.dropped_to_halted >= sim.fault_stats.dropped_to_crashed
    clean = Simulator(topology, FloodAlgorithm(rounds=6), seed=2).run()
    assert result.states[5].seen < clean.states[5].seen


# ----------------------------------------------------------------------
# The faults= axis
# ----------------------------------------------------------------------


def test_faults_axis_default_and_context_manager():
    assert get_default_faults() is None
    plan = FaultPlan(seed=8, p_drop=0.2)
    with using_faults(plan):
        assert get_default_faults() is plan
        with using_faults("none"):
            assert get_default_faults() is None
        assert get_default_faults() is plan
    assert get_default_faults() is None


def test_faults_axis_reaches_nested_simulations():
    topology = generators.grid(4, 4)
    clean = Simulator(topology, FloodAlgorithm(rounds=4), seed=1).run()
    with using_faults(FaultPlan(seed=1, p_drop=0.3)):
        faulted = Simulator(topology, FloodAlgorithm(rounds=4), seed=1).run()
    assert _states(faulted) != _states(clean)


def test_faults_parameter_decorator():
    topology = generators.grid(3, 3)

    @faults_parameter
    def run(seed):
        return Simulator(topology, FloodAlgorithm(rounds=3), seed=seed).run()

    clean = run(4)
    faulted = run(4, faults=FaultPlan(seed=4, p_drop=0.4))
    assert _states(faulted) != _states(clean)
    assert get_default_faults() is None


def test_set_default_faults_restores_previous():
    plan = FaultPlan(seed=6, p_drop=0.1)
    previous = set_default_faults(plan)
    try:
        assert previous is None
        assert get_default_faults() is plan
    finally:
        set_default_faults(previous)
    assert get_default_faults() is None


def test_from_scenario_promotes_edge_failures_to_crashes():
    from repro.failures.scenarios import FailureScenario

    scenario = FailureScenario(
        edges=((0, 1), (5, 6)), kind="kwise", label="k2"
    )
    plan = FaultPlan.from_scenario(scenario, seed=4, horizon=6, p_drop=0.1)
    twin = FaultPlan.from_scenario(scenario, seed=4, horizon=6, p_drop=0.1)
    assert plan == twin  # seeded derivation is deterministic
    assert plan.crashes  # a non-empty scenario always crashes someone
    incident = {0, 1, 5, 6}
    for node, round_ in plan.crashes:
        assert node in incident
        assert 1 <= round_ <= 6
    assert plan.p_drop == 0.1  # transport kwargs pass through
    assert plan != FaultPlan.from_scenario(scenario, seed=5, horizon=6)
