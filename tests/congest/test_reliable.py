"""The reliable-delivery sublayer: recovery, detection, accounting.

:func:`repro.congest.reliable.run_reliably` must turn any seeded
transport-fault schedule into either a run whose inner states are
bit-identical to the fault-free reference, or a declared
:class:`~repro.errors.DetectedFailure` — never a silently wrong
answer.  These tests pin the recovery side (lossy plans, all
workloads), the detection side (crash-stop partitions), the cost model
(low fault-free overhead, ledger charging, widened frame budget), and
the ``plan.reliable`` routing through :class:`Simulator`.
"""

import pytest

from repro.congest.faults import FaultPlan, using_faults
from repro.congest.reliable import (
    FRAME_HEADER_BITS,
    ReliableSimulation,
    run_reliably,
)
from repro.congest.message import bandwidth_limit
from repro.congest.simulator import Simulator
from repro.congest.trace import RoundLedger
from repro.congest.workloads import (
    AlarmStormAlgorithm,
    FloodAlgorithm,
    TokenWalkAlgorithm,
)
from repro.errors import DetectedFailure, SimulationError
from repro.graphs import generators

LOSSY = FaultPlan(
    seed=3, p_drop=0.1, p_duplicate=0.05, p_delay=0.05, p_reorder=0.2
)


def _reference(topology, make, seed):
    return Simulator(topology, make(), seed=seed).run()


def _assert_states_match(reference, outcome, topology):
    for v in topology.nodes:
        assert vars(reference.states[v]) == vars(outcome.states[v]), v


# ----------------------------------------------------------------------
# Recovery: lossy plans end bit-identical to the fault-free reference
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "make",
    [
        lambda: FloodAlgorithm(rounds=5),
        lambda: TokenWalkAlgorithm(steps=10),
        lambda: AlarmStormAlgorithm(period=3, ticks=3),
    ],
)
@pytest.mark.parametrize("seed", [0, 7])
def test_lossy_run_recovers_bit_identical(make, seed):
    topology = generators.grid(4, 4)
    reference = _reference(topology, make, seed)
    outcome = run_reliably(
        topology, make(), horizon=reference.rounds, seed=seed, faults=LOSSY
    )
    _assert_states_match(reference, outcome, topology)
    assert outcome.inner_rounds == reference.rounds
    assert not outcome.stalled
    assert outcome.fault_stats.dropped > 0


def test_heavy_faults_still_recover():
    topology = generators.grid(4, 4)
    make = lambda: FloodAlgorithm(rounds=5)  # noqa: E731
    reference = _reference(topology, make, 1)
    plan = FaultPlan(
        seed=13, p_drop=0.3, p_duplicate=0.15, p_delay=0.15, p_reorder=0.3
    )
    outcome = run_reliably(
        topology, make(), horizon=reference.rounds, seed=1, faults=plan
    )
    _assert_states_match(reference, outcome, topology)


def test_fault_free_overhead_is_small():
    topology = generators.grid(5, 5)
    make = lambda: FloodAlgorithm(rounds=8)  # noqa: E731
    reference = _reference(topology, make, 0)
    outcome = run_reliably(
        topology, make(), horizon=reference.rounds, seed=0
    )
    _assert_states_match(reference, outcome, topology)
    # Lockstep without faults costs ~1 physical round per inner round
    # plus constant start-up; prod traffic stays zero.
    assert outcome.overhead <= 1.6
    assert outcome.prods == 0


# ----------------------------------------------------------------------
# Detection: crash-stop partitions surface as declared failures
# ----------------------------------------------------------------------


def test_crash_stop_is_detected_not_masked():
    topology = generators.grid(4, 4)
    make = lambda: FloodAlgorithm(rounds=6)  # noqa: E731
    reference = _reference(topology, make, 2)
    plan = FaultPlan(seed=2, crashes=((5, 2),))
    with pytest.raises(DetectedFailure):
        run_reliably(
            topology,
            make(),
            horizon=reference.rounds,
            seed=2,
            faults=plan,
            max_retries=4,
        )


def test_detection_is_deterministic():
    topology = generators.cycle_with_hub(16, 4)
    make = lambda: FloodAlgorithm(rounds=5)  # noqa: E731
    reference = _reference(topology, make, 0)
    plan = FaultPlan(seed=5, p_drop=0.05, crashes=((3, 1),))
    messages = []
    for _ in range(2):
        with pytest.raises(DetectedFailure) as info:
            run_reliably(
                topology,
                make(),
                horizon=reference.rounds,
                seed=0,
                faults=plan,
                max_retries=4,
            )
        messages.append(str(info.value))
    assert messages[0] == messages[1]


# ----------------------------------------------------------------------
# Accounting: ledger, frame budget, result shape
# ----------------------------------------------------------------------


def test_ledger_charges_physical_rounds():
    topology = generators.grid(4, 4)
    make = lambda: FloodAlgorithm(rounds=4)  # noqa: E731
    reference = _reference(topology, make, 0)
    ledger = RoundLedger()
    outcome = run_reliably(
        topology,
        make(),
        horizon=reference.rounds,
        seed=0,
        faults=LOSSY,
        ledger=ledger,
    )
    assert len(ledger.records) == 1
    record = ledger.records[0]
    assert record.name.startswith("reliable:")
    assert record.rounds == outcome.rounds
    assert record.messages == outcome.messages


def test_frame_budget_extends_inner_budget():
    topology = generators.grid(4, 4)
    base = bandwidth_limit(topology.n)
    sim = ReliableSimulation(
        topology,
        FloodAlgorithm(rounds=3),
        plan=FaultPlan(seed=0, p_drop=0.05, reliable=True),
    )
    assert sim.bandwidth_bits == base + FRAME_HEADER_BITS


def test_reliable_simulation_rejects_direct_queueing():
    sim = ReliableSimulation(
        generators.grid(3, 3),
        FloodAlgorithm(rounds=2),
        plan=FaultPlan(seed=0, reliable=True),
    )
    with pytest.raises(SimulationError):
        sim.queue_message(0, 1, ("x",))


# ----------------------------------------------------------------------
# plan.reliable routing through Simulator / the faults axis
# ----------------------------------------------------------------------


def test_simulator_routes_reliable_plans():
    topology = generators.grid(4, 4)
    plan = FaultPlan(seed=4, p_drop=0.1, reliable=True)
    sim = Simulator(topology, FloodAlgorithm(rounds=4), seed=4, faults=plan)
    assert sim.engine_name == "reliable"
    clean = Simulator(topology, FloodAlgorithm(rounds=4), seed=4).run()
    result = sim.run()
    assert {v: vars(s) for v, s in result.states.items()} == {
        v: vars(s) for v, s in clean.states.items()
    }
    assert result.rounds > clean.rounds
    assert sim.fault_stats is not None and sim.fault_stats.dropped > 0


def test_using_faults_reaches_inner_simulations_reliably():
    topology = generators.grid(4, 4)
    clean = Simulator(topology, TokenWalkAlgorithm(steps=8), seed=9).run()
    with using_faults(FaultPlan(seed=9, p_drop=0.1, reliable=True)):
        recovered = Simulator(
            topology, TokenWalkAlgorithm(steps=8), seed=9
        ).run()
    assert {v: vars(s) for v, s in recovered.states.items()} == {
        v: vars(s) for v, s in clean.states.items()
    }
