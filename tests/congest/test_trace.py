"""Tests for round-ledger accounting."""

from repro.congest.trace import PhaseRecord, RoundLedger


def test_charge_accumulates():
    ledger = RoundLedger()
    ledger.charge("a", 10, 5)
    ledger.charge("b", 20, 7)
    assert ledger.total_rounds == 30
    assert ledger.total_messages == 12


def test_charge_phase_adds_barrier():
    ledger = RoundLedger(barrier_depth=4)
    ledger.charge_phase("a", 10)
    assert ledger.total_rounds == 10 + 2 * 4 + 1
    assert ledger.simulated_rounds == 10


def test_barrier_depth_zero_costs_one_round():
    ledger = RoundLedger()
    ledger.charge_phase("a", 5)
    assert ledger.total_rounds == 6


def test_merge_prefixes_names():
    inner = RoundLedger()
    inner.charge("x", 3)
    outer = RoundLedger()
    outer.merge(inner, prefix="sub/")
    assert outer.records[0].name == "sub/x"
    assert outer.total_rounds == 3


def test_summary_contains_totals():
    ledger = RoundLedger(barrier_depth=2)
    ledger.charge_phase("phase-one", 7, 13)
    text = ledger.summary()
    assert "phase-one" in text
    assert "TOTAL" in text
    assert "13" in text


def test_phase_record_is_frozen():
    record = PhaseRecord("a", 1, 2, 3)
    try:
        record.rounds = 9
        raised = False
    except AttributeError:
        raised = True
    assert raised
