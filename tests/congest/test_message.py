"""Tests for the O(log n)-bit bandwidth audit."""

import pytest

from repro.congest.message import (
    bandwidth_limit,
    check_message,
    message_bits,
)
from repro.errors import BandwidthExceededError


def test_none_and_bool_are_one_bit():
    assert message_bits(None) == 1
    assert message_bits(True) == 1
    assert message_bits(False) == 1


def test_integer_bits_grow_with_magnitude():
    assert message_bits(0) == 2
    assert message_bits(1) == 2
    assert message_bits(1023) < message_bits(2**40)


def test_string_tags_cost_a_constant():
    assert message_bits("bfs") == message_bits("a-much-longer-tag-name")


def test_tuple_framing():
    assert message_bits(("t", 1, 2)) > message_bits("t")


def test_nested_tuple_rejected():
    with pytest.raises(BandwidthExceededError):
        message_bits(("t", (1, 2)))


def test_container_payloads_rejected():
    with pytest.raises(BandwidthExceededError):
        message_bits([1, 2, 3])
    with pytest.raises(BandwidthExceededError):
        message_bits({"a": 1})


def test_bandwidth_limit_grows_logarithmically():
    small = bandwidth_limit(16)
    large = bandwidth_limit(2**20)
    assert small < large
    assert large <= 8 * 21 + 16


def test_bandwidth_limit_floor():
    assert bandwidth_limit(2) >= 32


def test_check_message_accepts_small():
    assert check_message(("id", 42), 64) > 0


def test_check_message_rejects_oversized():
    with pytest.raises(BandwidthExceededError):
        check_message(("big", 2**200), 64)


def test_typical_protocol_messages_fit_default_budget():
    limit = bandwidth_limit(1024)
    # tag + weight + two endpoints: the largest message the MST sends.
    assert check_message(("m", 1023, 2_000_000, 1023), limit) <= limit
