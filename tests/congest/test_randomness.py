"""Tests for the shared-randomness substrate."""

from repro.congest.bfs import build_bfs_tree
from repro.congest.randomness import coin, mix, part_coin, share_randomness
from repro.congest.trace import RoundLedger
from repro.graphs import generators


def test_mix_deterministic():
    assert mix(1, 2, 3) == mix(1, 2, 3)


def test_mix_sensitive_to_order_and_values():
    assert mix(1, 2) != mix(2, 1)
    assert mix(1, 2) != mix(1, 3)
    assert mix(5) != mix(5, 0)


def test_coin_uniform_range():
    values = [coin(9, i) for i in range(2000)]
    assert all(0 <= v < 1 for v in values)
    mean = sum(values) / len(values)
    assert 0.45 < mean < 0.55


def test_part_coin_probability():
    hits = sum(part_coin(123, i, 0, 0.25) for i in range(4000))
    assert 800 < hits < 1200  # ~1000 expected


def test_part_coin_shared_between_calls():
    assert part_coin(7, 3, 1, 0.5) == part_coin(7, 3, 1, 0.5)


def test_share_randomness_delivers_same_seed_everywhere(grid6):
    tree, _ = build_bfs_tree(grid6, 0)
    seed, result = share_randomness(grid6, tree, seed=11)
    assert isinstance(seed, int)
    for v in grid6.nodes:
        assert result.states[v].seed == seed


def test_share_randomness_rounds_depth_plus_chunks(grid6):
    tree, _ = build_bfs_tree(grid6, 0)
    _seed, result = share_randomness(grid6, tree, seed=11)
    chunks = max(1, grid6.n.bit_length())
    assert result.rounds <= tree.height + chunks + 2


def test_share_randomness_different_seeds_differ(grid6):
    tree, _ = build_bfs_tree(grid6, 0)
    s1, _ = share_randomness(grid6, tree, seed=1)
    s2, _ = share_randomness(grid6, tree, seed=2)
    assert s1 != s2


def test_share_randomness_ledger(grid6):
    tree, _ = build_bfs_tree(grid6, 0)
    ledger = RoundLedger(barrier_depth=tree.height)
    share_randomness(grid6, tree, seed=3, ledger=ledger)
    assert ledger.total_rounds > 0


def test_share_randomness_on_path():
    path = generators.path(16)
    from repro.graphs.spanning_trees import SpanningTree

    tree = SpanningTree.bfs(path, 0)
    seed, result = share_randomness(path, tree, seed=5)
    assert result.states[15].seed == seed
