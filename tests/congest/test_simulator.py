"""Tests for the CONGEST round simulator."""

import pytest

from repro.congest.algorithm import NodeAlgorithm
from repro.congest.simulator import Simulator, run_algorithm
from repro.congest.topology import Topology
from repro.errors import (
    BandwidthExceededError,
    RoundLimitExceededError,
    SimulationError,
)


class Silent(NodeAlgorithm):
    """Does nothing: the simulation must terminate in round 0."""


class PingPong(NodeAlgorithm):
    """Node 0 sends k pings; node 1 echoes each one."""

    def __init__(self, pings: int):
        super().__init__()
        self.pings = pings

    def on_start(self, node):
        node.state.received = 0
        if node.id == 0:
            node.state.sent = 1
            node.send(1, ("ping", 1))

    def on_round(self, node, messages):
        for _sender, payload in messages:
            node.state.received += 1
            if node.id == 1:
                node.send(0, ("pong", payload[1]))
            elif node.state.sent < self.pings:
                node.state.sent += 1
                node.send(1, ("ping", node.state.sent))


class DoubleSend(NodeAlgorithm):
    def on_start(self, node):
        if node.id == 0:
            node.send(1, ("a",))
            node.send(1, ("b",))


class NonNeighborSend(NodeAlgorithm):
    def on_start(self, node):
        if node.id == 0:
            node.send(2, ("x",))


class Alarm(NodeAlgorithm):
    """Node 0 wakes itself far in the future and records the round."""

    def on_start(self, node):
        node.state.woke = None
        if node.id == 0:
            node.wake_at(500)

    def on_round(self, node, messages):
        node.state.woke = node.round


class Chatter(NodeAlgorithm):
    def on_start(self, node):
        node.broadcast(("hi",))

    def on_round(self, node, messages):
        node.broadcast(("hi",))  # never stops


class HaltEarly(NodeAlgorithm):
    def on_start(self, node):
        if node.id == 0:
            node.send(1, ("x",))
        node.halt()


@pytest.fixture
def pair():
    return Topology(2, [(0, 1)])


@pytest.fixture
def triangle_path():
    return Topology(3, [(0, 1), (1, 2)])


def test_silent_algorithm_terminates_in_round_zero(pair):
    result = run_algorithm(pair, Silent())
    assert result.rounds == 0
    assert result.messages == 0


def test_ping_pong_round_and_message_count(pair):
    result = run_algorithm(pair, PingPong(3))
    # 3 pings + 3 pongs delivered, one per round: 6 rounds.
    assert result.messages == 6
    assert result.rounds == 6
    assert result.states[0].received == 3
    assert result.states[1].received == 3


def test_double_send_same_edge_rejected(pair):
    with pytest.raises(SimulationError):
        run_algorithm(pair, DoubleSend())


def test_send_to_non_neighbor_rejected(triangle_path):
    with pytest.raises(SimulationError):
        run_algorithm(triangle_path, NonNeighborSend())


def test_idle_round_skipping_still_counts_rounds(pair):
    result = run_algorithm(pair, Alarm())
    assert result.states[0].woke == 500
    assert result.rounds == 500


def test_round_limit_watchdog(pair):
    with pytest.raises(RoundLimitExceededError):
        Simulator(pair, Chatter(), max_rounds=50).run()


def test_messages_to_halted_nodes_are_counted(pair):
    result = run_algorithm(pair, HaltEarly())
    assert result.dropped_to_halted == 1


def test_halted_node_cannot_send(pair):
    class SendAfterHalt(NodeAlgorithm):
        def on_start(self, node):
            node.halt()
            node.send(1 - node.id, ("x",))

    with pytest.raises(SimulationError):
        run_algorithm(pair, SendAfterHalt())


def test_bandwidth_enforced(pair):
    class Oversized(NodeAlgorithm):
        def on_start(self, node):
            if node.id == 0:
                node.send(1, ("huge", 2**500))

    with pytest.raises(BandwidthExceededError):
        run_algorithm(pair, Oversized())


def test_bandwidth_check_can_be_disabled(pair):
    class Oversized(NodeAlgorithm):
        def on_start(self, node):
            if node.id == 0:
                node.send(1, ("huge", 2**500))

    result = Simulator(pair, Oversized(), check_bandwidth=False).run()
    assert result.messages == 1


def test_determinism_same_seed(pair):
    class RandomSend(NodeAlgorithm):
        def on_start(self, node):
            node.state.value = node.random.randrange(1000)

    r1 = Simulator(pair, RandomSend(), seed=5).run()
    r2 = Simulator(pair, RandomSend(), seed=5).run()
    r3 = Simulator(pair, RandomSend(), seed=6).run()
    assert r1.states[0].value == r2.states[0].value
    assert (r1.states[0].value, r1.states[1].value) != (
        r3.states[0].value,
        r3.states[1].value,
    )


def test_messages_sorted_by_sender():
    star = Topology(4, [(3, 0), (3, 1), (3, 2)])

    class Report(NodeAlgorithm):
        def on_start(self, node):
            node.state.order = None
            if node.id != 3:
                node.send(3, ("x", node.id))

        def on_round(self, node, messages):
            node.state.order = [sender for sender, _ in messages]

    result = run_algorithm(star, Report())
    assert result.states[3].order == [0, 1, 2]


def test_inputs_installed_before_start(pair):
    class UseInput(NodeAlgorithm):
        def on_start(self, node):
            node.state.doubled = node.state.given * 2

    algorithm = UseInput({0: {"given": 21}, 1: {"given": 1}})
    result = run_algorithm(pair, algorithm)
    assert result.states[0].doubled == 42


def test_wake_in_past_rejected(pair):
    class BadAlarm(NodeAlgorithm):
        def on_start(self, node):
            node.wake_at(0)

    with pytest.raises(SimulationError):
        run_algorithm(pair, BadAlarm())


def test_edge_traffic_tracing(pair):
    result = Simulator(pair, PingPong(2), trace_edges=True).run()
    assert result.edge_traffic[(0, 1)] == 4


ENGINES = ("reference", "batched")


@pytest.mark.parametrize("engine", ENGINES)
def test_duplicate_wakeups_in_one_round_fire_once(pair, engine):
    """Re-registering the same (node, round) alarm must not double-run."""

    class DoubleAlarm(NodeAlgorithm):
        def on_start(self, node):
            node.state.activations = 0
            if node.id == 0:
                node.wake_at(7)
                node.wake_at(7)  # same round again: must coalesce

        def on_round(self, node, messages):
            node.state.activations += 1

    result = Simulator(pair, DoubleAlarm(), engine=engine).run()
    assert result.states[0].activations == 1
    assert result.rounds == 7


@pytest.mark.parametrize("engine", ENGINES)
def test_two_nodes_same_alarm_round(pair, engine):
    """One heap entry, two due nodes: both must run, once each."""

    class SharedAlarm(NodeAlgorithm):
        def on_start(self, node):
            node.state.woke = None
            node.wake_at(11)

        def on_round(self, node, messages):
            node.state.woke = node.round

    result = Simulator(pair, SharedAlarm(), engine=engine).run()
    assert result.states[0].woke == result.states[1].woke == 11
    assert result.rounds == 11


@pytest.mark.parametrize("engine", ENGINES)
def test_wakeup_scheduled_during_idle_stretch(pair, engine):
    """An alarm set from inside a skipped idle gap must still fire.

    Node 0 idles until round 10, then schedules round 12 while a far
    alarm for round 40 is already pending — the near alarm must not be
    shadowed by the earlier heap entry, and the tail gap must still be
    skipped-but-counted.
    """

    class NestedAlarm(NodeAlgorithm):
        def on_start(self, node):
            node.state.fired = []
            if node.id == 0:
                node.wake_at(10)
                node.wake_at(40)

        def on_round(self, node, messages):
            node.state.fired.append(node.round)
            if node.round == 10:
                node.wake_at(12)

    result = Simulator(pair, NestedAlarm(), engine=engine).run()
    assert result.states[0].fired == [10, 12, 40]
    assert result.rounds == 40


@pytest.mark.parametrize("engine", ENGINES)
def test_alarm_and_message_in_same_round(triangle_path, engine):
    """A node woken by an alarm still receives that round's messages."""

    class AlarmAndMessage(NodeAlgorithm):
        def on_start(self, node):
            node.state.got = None
            if node.id == 1:
                node.wake_at(1)
            if node.id == 0:
                node.send(1, ("x",))

        def on_round(self, node, messages):
            if node.id == 1 and node.state.got is None:
                node.state.got = [sender for sender, _ in messages]

    result = Simulator(triangle_path, AlarmAndMessage(), engine=engine).run()
    assert result.states[1].got == [0]
    assert result.rounds == 1


@pytest.mark.parametrize("engine", ENGINES)
def test_overlapping_alarms_pop_together(pair, engine):
    """Alarms at r and r' <= r due in the same step pop as one batch.

    Node 0's message delivery at round 6 coincides with node 1's alarm
    for round 5 *and* round 6 (the round-5 entry became due during the
    5→6 advance): node 1 must run exactly once.
    """

    class Overlap(NodeAlgorithm):
        def on_start(self, node):
            node.state.runs = 0
            if node.id == 1:
                node.wake_at(5)
                node.wake_at(6)
            if node.id == 0:
                node.wake_at(5)

        def on_round(self, node, messages):
            node.state.runs += 1
            if node.id == 0 and node.round == 5:
                node.send(1, ("x",))

    result = Simulator(pair, Overlap(), engine=engine).run()
    # node 1 runs at round 5 (alarm) and round 6 (alarm + message).
    assert result.states[1].runs == 2
    assert result.rounds == 6


def test_broadcast_sends_to_all_neighbors(triangle_path):
    class Once(NodeAlgorithm):
        def on_start(self, node):
            node.state.got = 0
            if node.id == 1:
                node.broadcast(("x",))

        def on_round(self, node, messages):
            node.state.got += len(messages)

    result = run_algorithm(triangle_path, Once())
    assert result.states[0].got == 1
    assert result.states[2].got == 1
