"""Tests for the CONGEST round simulator."""

import pytest

from repro.congest.algorithm import NodeAlgorithm
from repro.congest.simulator import Simulator, run_algorithm
from repro.congest.topology import Topology
from repro.errors import (
    BandwidthExceededError,
    RoundLimitExceededError,
    SimulationError,
)


class Silent(NodeAlgorithm):
    """Does nothing: the simulation must terminate in round 0."""


class PingPong(NodeAlgorithm):
    """Node 0 sends k pings; node 1 echoes each one."""

    def __init__(self, pings: int):
        super().__init__()
        self.pings = pings

    def on_start(self, node):
        node.state.received = 0
        if node.id == 0:
            node.state.sent = 1
            node.send(1, ("ping", 1))

    def on_round(self, node, messages):
        for _sender, payload in messages:
            node.state.received += 1
            if node.id == 1:
                node.send(0, ("pong", payload[1]))
            elif node.state.sent < self.pings:
                node.state.sent += 1
                node.send(1, ("ping", node.state.sent))


class DoubleSend(NodeAlgorithm):
    def on_start(self, node):
        if node.id == 0:
            node.send(1, ("a",))
            node.send(1, ("b",))


class NonNeighborSend(NodeAlgorithm):
    def on_start(self, node):
        if node.id == 0:
            node.send(2, ("x",))


class Alarm(NodeAlgorithm):
    """Node 0 wakes itself far in the future and records the round."""

    def on_start(self, node):
        node.state.woke = None
        if node.id == 0:
            node.wake_at(500)

    def on_round(self, node, messages):
        node.state.woke = node.round


class Chatter(NodeAlgorithm):
    def on_start(self, node):
        node.broadcast(("hi",))

    def on_round(self, node, messages):
        node.broadcast(("hi",))  # never stops


class HaltEarly(NodeAlgorithm):
    def on_start(self, node):
        if node.id == 0:
            node.send(1, ("x",))
        node.halt()


@pytest.fixture
def pair():
    return Topology(2, [(0, 1)])


@pytest.fixture
def triangle_path():
    return Topology(3, [(0, 1), (1, 2)])


def test_silent_algorithm_terminates_in_round_zero(pair):
    result = run_algorithm(pair, Silent())
    assert result.rounds == 0
    assert result.messages == 0


def test_ping_pong_round_and_message_count(pair):
    result = run_algorithm(pair, PingPong(3))
    # 3 pings + 3 pongs delivered, one per round: 6 rounds.
    assert result.messages == 6
    assert result.rounds == 6
    assert result.states[0].received == 3
    assert result.states[1].received == 3


def test_double_send_same_edge_rejected(pair):
    with pytest.raises(SimulationError):
        run_algorithm(pair, DoubleSend())


def test_send_to_non_neighbor_rejected(triangle_path):
    with pytest.raises(SimulationError):
        run_algorithm(triangle_path, NonNeighborSend())


def test_idle_round_skipping_still_counts_rounds(pair):
    result = run_algorithm(pair, Alarm())
    assert result.states[0].woke == 500
    assert result.rounds == 500


def test_round_limit_watchdog(pair):
    with pytest.raises(RoundLimitExceededError):
        Simulator(pair, Chatter(), max_rounds=50).run()


def test_messages_to_halted_nodes_are_counted(pair):
    result = run_algorithm(pair, HaltEarly())
    assert result.dropped_to_halted == 1


def test_halted_node_cannot_send(pair):
    class SendAfterHalt(NodeAlgorithm):
        def on_start(self, node):
            node.halt()
            node.send(1 - node.id, ("x",))

    with pytest.raises(SimulationError):
        run_algorithm(pair, SendAfterHalt())


def test_bandwidth_enforced(pair):
    class Oversized(NodeAlgorithm):
        def on_start(self, node):
            if node.id == 0:
                node.send(1, ("huge", 2**500))

    with pytest.raises(BandwidthExceededError):
        run_algorithm(pair, Oversized())


def test_bandwidth_check_can_be_disabled(pair):
    class Oversized(NodeAlgorithm):
        def on_start(self, node):
            if node.id == 0:
                node.send(1, ("huge", 2**500))

    result = Simulator(pair, Oversized(), check_bandwidth=False).run()
    assert result.messages == 1


def test_determinism_same_seed(pair):
    class RandomSend(NodeAlgorithm):
        def on_start(self, node):
            node.state.value = node.random.randrange(1000)

    r1 = Simulator(pair, RandomSend(), seed=5).run()
    r2 = Simulator(pair, RandomSend(), seed=5).run()
    r3 = Simulator(pair, RandomSend(), seed=6).run()
    assert r1.states[0].value == r2.states[0].value
    assert (r1.states[0].value, r1.states[1].value) != (
        r3.states[0].value,
        r3.states[1].value,
    )


def test_messages_sorted_by_sender():
    star = Topology(4, [(3, 0), (3, 1), (3, 2)])

    class Report(NodeAlgorithm):
        def on_start(self, node):
            node.state.order = None
            if node.id != 3:
                node.send(3, ("x", node.id))

        def on_round(self, node, messages):
            node.state.order = [sender for sender, _ in messages]

    result = run_algorithm(star, Report())
    assert result.states[3].order == [0, 1, 2]


def test_inputs_installed_before_start(pair):
    class UseInput(NodeAlgorithm):
        def on_start(self, node):
            node.state.doubled = node.state.given * 2

    algorithm = UseInput({0: {"given": 21}, 1: {"given": 1}})
    result = run_algorithm(pair, algorithm)
    assert result.states[0].doubled == 42


def test_wake_in_past_rejected(pair):
    class BadAlarm(NodeAlgorithm):
        def on_start(self, node):
            node.wake_at(0)

    with pytest.raises(SimulationError):
        run_algorithm(pair, BadAlarm())


def test_edge_traffic_tracing(pair):
    result = Simulator(pair, PingPong(2), trace_edges=True).run()
    assert result.edge_traffic[(0, 1)] == 4


def test_broadcast_sends_to_all_neighbors(triangle_path):
    class Once(NodeAlgorithm):
        def on_start(self, node):
            node.state.got = 0
            if node.id == 1:
                node.broadcast(("x",))

        def on_round(self, node, messages):
            node.state.got += len(messages)

    result = run_algorithm(triangle_path, Once())
    assert result.states[0].got == 1
    assert result.states[2].got == 1
