"""Differential conformance: BatchedEngine vs ReferenceEngine.

Every test runs the same workload on both engines and asserts the
observable outcome is identical: ``rounds``, ``messages``, final node
``states``, ``edge_traffic``, and ``dropped_to_halted``.  This suite
is what licenses the batched engine as the default — any divergence
from the reference semantics is a bug here before it is a wrong number
in an experiment table.
"""

import pytest

from repro.congest.bfs import BFSTreeAlgorithm
from repro.congest.simulator import Simulator
from repro.congest.workloads import (
    AlarmStormAlgorithm,
    FloodAlgorithm,
    NeighborScanAlgorithm,
    TokenWalkAlgorithm,
)
from repro.core.core_fast import core_fast
from repro.core.core_slow import core_slow
from repro.core.existence import best_certified
from repro.core.tree_routing import convergecast, make_task
from repro.apps.mst import kruskal_reference, minimum_spanning_tree
from repro.graphs import generators, partitions
from repro.graphs.spanning_trees import SpanningTree
from repro.graphs.weights import weighted

ENGINES = ("reference", "batched")


def _run(topology, algorithm, seed, **kwargs):
    results = {}
    for engine in ENGINES:
        results[engine] = Simulator(
            topology, algorithm, seed=seed, trace_edges=True, engine=engine, **kwargs
        ).run()
    return results["reference"], results["batched"]


def _assert_identical(reference, batched):
    assert batched.rounds == reference.rounds
    assert batched.messages == reference.messages
    assert batched.dropped_to_halted == reference.dropped_to_halted
    assert batched.edge_traffic == reference.edge_traffic
    assert set(batched.states) == set(reference.states)
    for node_id, state in reference.states.items():
        assert vars(batched.states[node_id]) == vars(state), f"node {node_id}"


TOPOLOGIES = {
    "grid": lambda: generators.grid(6, 6),
    "torus": lambda: generators.torus(5, 5),
    "hub": lambda: generators.cycle_with_hub(48, 8),
    "delaunay": lambda: generators.delaunay(40, 3),
}

needs_geometry = pytest.mark.skipif(
    not generators.geometry_available(),
    reason="delaunay needs the geometry extra (numpy + scipy)",
)


def _family_params(families):
    return [
        pytest.param(name, marks=needs_geometry) if name == "delaunay" else name
        for name in sorted(families)
    ]


@pytest.mark.parametrize("topo_name", _family_params(TOPOLOGIES))
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_bfs_identical(topo_name, seed):
    topology = TOPOLOGIES[topo_name]()
    reference, batched = _run(
        topology, BFSTreeAlgorithm(seed % topology.n), seed
    )
    _assert_identical(reference, batched)


@pytest.mark.parametrize("topo_name", _family_params(TOPOLOGIES))
@pytest.mark.parametrize(
    "workload",
    [
        FloodAlgorithm(12),
        NeighborScanAlgorithm(9),
        AlarmStormAlgorithm(17, 4),
        TokenWalkAlgorithm(40),
    ],
    ids=lambda workload: workload.name,
)
def test_workloads_identical(topo_name, workload):
    topology = TOPOLOGIES[topo_name]()
    reference, batched = _run(topology, workload, seed=5)
    _assert_identical(reference, batched)


@pytest.mark.parametrize("seed", [0, 7])
@pytest.mark.parametrize("topo_name", ["grid", "torus"])
def test_core_slow_identical(topo_name, seed):
    topology = TOPOLOGIES[topo_name]()
    tree = SpanningTree.bfs(topology, 0)
    partition = partitions.voronoi(topology, 5, seed=2)
    point = best_certified(tree, partition)
    outcomes = {
        engine: core_slow(
            topology, tree, partition, point.congestion, seed=seed, engine=engine
        )
        for engine in ENGINES
    }
    reference, batched = outcomes["reference"], outcomes["batched"]
    assert batched.rounds == reference.rounds
    assert batched.messages == reference.messages
    assert batched.unusable == reference.unusable
    assert batched.shortcut.edge_map == reference.shortcut.edge_map


@pytest.mark.parametrize("topo_name", _family_params(TOPOLOGIES))
@pytest.mark.parametrize("seed", [0, 4])
def test_flood_up_identical(topo_name, seed):
    """The heap-pumped FloodUpAlgorithm on its own: both engines must
    agree on rounds, messages, and every node's q_ids/forwarded state
    even with a scattered unusable-edge pattern."""
    from repro.core.core_fast import FloodUpAlgorithm

    topology = TOPOLOGIES[topo_name]()
    tree = SpanningTree.bfs(topology, 0)
    partition = partitions.voronoi(topology, 7, seed=seed)
    inputs = {}
    for v in topology.nodes:
        parent = tree.parent(v)
        inputs[v] = {
            "part": partition.part_of(v),
            "tree_parent": parent,
            # A deterministic scattered pattern of unusable edges.
            "parent_usable": parent is not None and (v * 7 + seed) % 5 != 0,
        }
    reference, batched = _run(topology, FloodUpAlgorithm(inputs), seed=seed)
    _assert_identical(reference, batched)


@pytest.mark.parametrize("seed", [0, 7])
def test_core_fast_identical(seed):
    topology = TOPOLOGIES["grid"]()
    tree = SpanningTree.bfs(topology, 0)
    partition = partitions.grid_rows(6, 6)
    point = best_certified(tree, partition)
    outcomes = {
        engine: core_fast(
            topology, tree, partition, point.congestion,
            shared_seed=99, seed=seed, engine=engine,
        )
        for engine in ENGINES
    }
    reference, batched = outcomes["reference"], outcomes["batched"]
    assert batched.rounds == reference.rounds
    assert batched.messages == reference.messages
    assert batched.unusable == reference.unusable
    assert batched.shortcut.edge_map == reference.shortcut.edge_map


@pytest.mark.parametrize("seed", [0, 3])
def test_tree_routing_identical(seed):
    topology = TOPOLOGIES["grid"]()
    tree = SpanningTree.bfs(topology, 0)
    tasks = []
    for tid, v in enumerate((7, 13, 22, 30)):
        nodes = {v} | set(tree.ancestors(v))
        tasks.append(make_task(tree, tid, nodes))
    values = {t.key: {v: v for v in t.nodes} for t in tasks}
    outcomes = {}
    for engine in ENGINES:
        combined, run = convergecast(
            topology, tree, tasks, values, "min", seed=seed, engine=engine
        )
        outcomes[engine] = (combined, run.rounds, run.messages)
    assert outcomes["batched"] == outcomes["reference"]


@pytest.mark.parametrize("topo_name", ["grid", "torus"])
def test_mst_identical(topo_name):
    topology = weighted(TOPOLOGIES[topo_name](), seed=17)
    results = {
        engine: minimum_spanning_tree(topology, seed=23, engine=engine)
        for engine in ENGINES
    }
    reference, batched = results["reference"], results["batched"]
    assert batched.edges == reference.edges
    assert batched.weight == reference.weight
    assert batched.phases == reference.phases
    assert batched.ledger.total_rounds == reference.ledger.total_rounds
    assert batched.ledger.total_messages == reference.ledger.total_messages
    _edges, ref_weight = kruskal_reference(topology)
    assert batched.weight == ref_weight


class HaltMidRunAlgorithm(FloodAlgorithm):
    """Flood, but even-numbered nodes halt mid-protocol.

    Odd nodes keep flooding at their halted neighbors for several more
    rounds, so both engines must drop (and count) in-flight traffic to
    dead inboxes identically.
    """

    name = "halt-mid-run"

    def __init__(self, rounds: int, halt_round: int):
        super().__init__(rounds)
        self.halt_round = halt_round

    def on_round(self, node, messages) -> None:
        super().on_round(node, messages)
        if node.id % 2 == 0 and node.round >= self.halt_round:
            node.halt()


@pytest.mark.parametrize("topo_name", ["grid", "hub"])
@pytest.mark.parametrize("seed", [0, 3])
def test_dropped_to_halted_identical(topo_name, seed):
    topology = TOPOLOGIES[topo_name]()
    reference, batched = _run(
        topology, HaltMidRunAlgorithm(rounds=10, halt_round=3), seed
    )
    # The halted nodes' neighbors flood for 7 more rounds: the counter
    # must move, and must move identically on both engines.
    assert reference.dropped_to_halted > 0
    assert batched.dropped_to_halted == reference.dropped_to_halted
    _assert_identical(reference, batched)


@pytest.mark.parametrize("topo_name", ["grid", "hub"])
def test_dropped_to_halted_counts_every_late_message(topo_name):
    topology = TOPOLOGIES[topo_name]()
    reference, batched = _run(
        topology, HaltMidRunAlgorithm(rounds=8, halt_round=2), seed=1
    )
    _assert_identical(reference, batched)
    halted = [v for v in topology.nodes if v % 2 == 0]
    # A dead inbox can swallow at most one message per incident edge per
    # round between the halt and the end of the flood.
    live_rounds = 8 - 2
    upper = sum(len(topology.neighbors(v)) for v in halted) * live_rounds
    assert 0 < reference.dropped_to_halted <= upper
