"""Lazy-cache coherence audit across topology twins.

``Topology`` caches derived structures lazily (``_edge_set``, ``_adj``,
and the ``_kernels`` dict holding CSR/edge-id/component kernels).  The
twin constructors each make a different sharing decision:

* ``with_weights`` **shares** the kernel cache — every cached kernel is
  a function of ``(n, edges)`` only;
* ``from_csr`` **seeds** its cache with the CSR it was built from;
* ``delete_edges`` must start **fresh** — the survivor has different
  edges, so inheriting any cache would serve stale answers.

The mutate-then-measure tests drive a full measure pipeline through a
mutated topology with *both* quality kernels and assert the reports
agree — the regression that catches a stale cache leaking into either.
"""

import pytest

from repro.congest.topology import Topology, component_subtopologies
from repro.core import quality
from repro.core.doubling import find_shortcut_doubling
from repro.errors import TopologyError
from repro.failures.repair import split_partition
from repro.graphs import generators, partitions
from repro.graphs.csr import adjacency_csr, bfs_spanning_tree


def test_with_weights_shares_kernel_cache():
    topology = generators.grid(4, 4)
    csr = adjacency_csr(topology)
    weighted = topology.with_weights({e: i + 1 for i, e in enumerate(topology.edges)})
    assert weighted._kernels is topology._kernels
    assert adjacency_csr(weighted) is csr
    assert weighted.weight(0, 1) == 1 + topology.edges.index((0, 1))


def test_from_csr_seeds_csr_kernel():
    topology = generators.grid(4, 4)
    csr = adjacency_csr(topology)
    rebuilt = Topology.from_csr(csr)
    assert adjacency_csr(rebuilt) is csr
    assert rebuilt.edges == topology.edges


def test_delete_edges_starts_with_fresh_caches():
    topology = generators.grid(4, 4)
    # Warm every lazy cache on the parent.
    adjacency_csr(topology)
    topology.has_edge(0, 1)
    topology.neighbors(0)
    topology.components()
    survivor = topology.delete_edges([(0, 1)])
    assert survivor._kernels is not topology._kernels
    assert not survivor._kernels
    assert survivor._edge_set is None and survivor._adj is None
    # The rebuilt caches describe the survivor, not the parent.
    assert not survivor.has_edge(0, 1)
    assert 1 not in survivor.neighbors(0)
    assert adjacency_csr(survivor) is not adjacency_csr(topology)
    assert survivor.m == topology.m - 1
    # The parent is untouched.
    assert topology.has_edge(0, 1)
    assert 1 in topology.neighbors(0)


def test_delete_edges_keeps_weights_of_survivors():
    topology = generators.grid(3, 3)
    weighted = topology.with_weights(
        {e: i + 10 for i, e in enumerate(topology.edges)}
    )
    survivor = weighted.delete_edges([weighted.edges[0]])
    assert survivor.is_weighted
    for edge in survivor.edges:
        assert survivor.weight(*edge) == weighted.weight(*edge)


def test_delete_edges_rejects_non_edges_and_disconnection():
    topology = generators.path(4)
    with pytest.raises(TopologyError):
        topology.delete_edges([(0, 3)])
    with pytest.raises(TopologyError):
        topology.delete_edges([(1, 2)], require_connected=True)
    survivor = topology.delete_edges([(1, 2)])
    assert survivor.components() == ((0, 1), (2, 3))
    assert not survivor.is_connected


def test_components_are_cached_and_fresh_per_twin():
    topology = generators.grid(3, 3)
    assert topology.components() is topology.components()
    survivor = topology.delete_edges([(0, 1), (0, 3)])
    assert len(survivor.components()) == 2
    assert len(topology.components()) == 1
    pieces = component_subtopologies(survivor)
    assert [len(nodes) for _, nodes in pieces] == [1, 8]


@pytest.mark.parametrize("kernel", quality.KERNELS)
def test_mutate_then_measure_kernels_agree(kernel):
    """Delete edges mid-pipeline, then measure with each kernel against
    the reference: a stale CSR/tree cache would break the agreement."""
    topology = generators.grid(5, 5)
    partition = partitions.voronoi(topology, 5, seed=2)
    tree = bfs_spanning_tree(topology, 0)
    find_shortcut_doubling(topology, tree, partition, seed=1, mode="direct")

    survivor = topology.delete_edges([(0, 1), (7, 12)])
    new_partition, _ = split_partition(survivor, partition)
    new_tree = bfs_spanning_tree(survivor, 0)
    outcome = find_shortcut_doubling(
        survivor, new_tree, new_partition, seed=1, mode="direct"
    )
    report = quality.measure(
        outcome.result.shortcut, survivor, kernel=kernel
    )
    reference = quality.measure(
        outcome.result.shortcut, survivor, kernel="reference"
    )
    assert report == reference


def test_mutate_then_measure_after_cache_warm():
    """Warming every cache on the parent must not leak into the
    survivor's measurements (the mutate-then-measure regression)."""
    topology = generators.torus(4, 4)
    partition = partitions.voronoi(topology, 4, seed=3)
    # Warm parent caches through a full pipeline.
    tree = bfs_spanning_tree(topology, 0)
    find_shortcut_doubling(topology, tree, partition, seed=2, mode="direct")
    adjacency_csr(topology)

    survivor = topology.delete_edges(topology.edges[:2])
    new_partition, _ = split_partition(survivor, partition)
    new_tree = bfs_spanning_tree(survivor, 0)
    outcome = find_shortcut_doubling(
        survivor, new_tree, new_partition, seed=2, mode="direct"
    )
    reports = {
        kernel: quality.measure(outcome.result.shortcut, survivor, kernel=kernel)
        for kernel in quality.KERNELS
    }
    first = next(iter(reports.values()))
    assert all(report == first for report in reports.values())
    # And the survivor's spanning tree lives strictly inside it.
    new_tree.validate_in(survivor)
    outcome.result.shortcut.validate_in(survivor)
