"""Tests for the crash-safe persistent store."""

import json
import os

import pytest

from repro.analysis.instances import InstanceSpec
from repro.service.store import (
    KilledWriter,
    PersistentStore,
    QUARANTINE_DIR,
    STORE_SCHEMA,
    _Hooks,
    spec_key,
)

SPEC = InstanceSpec("grid", (5, 5), partition=("voronoi", 5, 1))


@pytest.fixture
def store(tmp_path):
    return PersistentStore(tmp_path / "store")


def test_put_get_roundtrip(store):
    key = spec_key("mst", SPEC, seed=0)
    payload = {"weight": 42, "edges": [1, 2, 3]}
    assert store.put(key, payload)
    assert store.get(key) == payload
    assert store.stats.writes == 1


def test_miss_returns_none(store):
    assert store.get(spec_key("mst", SPEC, seed=1)) is None
    assert store.stats.misses == 1


def test_entry_file_layout(store):
    key = spec_key("mst", SPEC)
    store.put(key, {"x": 1})
    path = store.path_for(key)
    assert path.exists()
    assert path.parent.name == key[:2]
    envelope = json.loads(path.read_text())
    assert envelope["schema"] == STORE_SCHEMA
    assert envelope["key"] == key
    assert set(envelope) == {"schema", "key", "sha256", "payload"}


def test_disk_survives_process_restart(tmp_path, store):
    key = spec_key("mst", SPEC)
    store.put(key, {"x": 1})
    reopened = PersistentStore(store.root)
    assert reopened.get(key) == {"x": 1}
    assert reopened.stats.hits_disk == 1


def test_memory_layer_serves_repeat_reads(store):
    key = spec_key("mst", SPEC)
    store.put(key, {"x": 1})
    assert store.get(key) == {"x": 1}
    assert store.stats.hits_memory == 1
    assert store.stats.hits_disk == 0


def test_memory_layer_is_lru_bounded(tmp_path):
    store = PersistentStore(tmp_path / "s", memory_entries=2)
    keys = [spec_key("mst", SPEC, seed=i) for i in range(3)]
    for i, key in enumerate(keys):
        store.put(key, {"i": i})
    assert store.stats.evictions == 1
    # The evicted (oldest) key falls through to disk, the rest stay hot.
    store.get(keys[0])
    assert store.stats.hits_disk == 1
    store.get(keys[2])
    assert store.stats.hits_memory == 1


@pytest.mark.parametrize(
    "damage",
    [
        lambda raw: raw[: len(raw) // 2],  # truncation
        lambda raw: b"",  # emptied
        lambda raw: b"not json at all",  # garbage
        lambda raw: raw.replace(b'"payload"', b'"hijack!"'),  # structure
    ],
)
def test_corruption_quarantines_and_misses(store, damage):
    key = spec_key("mst", SPEC)
    store.put(key, {"x": 1})
    path = store.path_for(key)
    path.write_bytes(damage(path.read_bytes()))
    store.forget_memory()
    assert store.get(key) is None
    assert store.stats.quarantined == 1
    assert not path.exists()
    assert list((store.root / QUARANTINE_DIR).iterdir())
    # Recompute-and-repopulate works after quarantine.
    assert store.put(key, {"x": 2})
    store.forget_memory()
    assert store.get(key) == {"x": 2}


def test_checksum_mismatch_is_corruption(store):
    key = spec_key("mst", SPEC)
    store.put(key, {"x": 1})
    path = store.path_for(key)
    envelope = json.loads(path.read_text())
    envelope["payload"] = {"x": 999}  # checksum no longer matches
    path.write_text(json.dumps(envelope))
    store.forget_memory()
    assert store.get(key) is None
    assert store.stats.quarantined == 1


def test_key_mismatch_is_corruption(store):
    a = spec_key("mst", SPEC, seed=0)
    b = spec_key("mst", SPEC, seed=1)
    store.put(a, {"x": 1})
    # Simulate an entry landing under the wrong name.
    target = store.path_for(b)
    target.parent.mkdir(parents=True, exist_ok=True)
    os.replace(store.path_for(a), target)
    store.forget_memory()
    assert store.get(b) is None
    assert store.stats.quarantined == 1


def test_killed_writer_leaves_old_entry_intact(tmp_path):
    state = {"kill": False}

    def during_commit(key, tmp):
        if state["kill"]:
            raise KilledWriter("boom")

    store = PersistentStore(
        tmp_path / "s", hooks=_Hooks(during_commit=during_commit)
    )
    key = spec_key("mst", SPEC)
    store.put(key, {"x": "old"})
    before = store.path_for(key).read_bytes()
    state["kill"] = True
    with pytest.raises(KilledWriter):
        store.put(key, {"x": "new"})
    assert store.path_for(key).read_bytes() == before
    # The orphan temp file is swept by the next open (restart).
    assert list(store.root.glob("*/*.tmp"))
    reopened = PersistentStore(store.root)
    assert reopened.stats.swept_tmp == 1
    assert not list(store.root.glob("*/*.tmp"))
    assert reopened.get(key) == {"x": "old"}


def test_io_error_on_read_is_a_miss(tmp_path):
    def before_read(key, path):
        raise OSError("injected")

    store = PersistentStore(tmp_path / "s", hooks=_Hooks(before_read=before_read))
    key = spec_key("mst", SPEC)
    store.put(key, {"x": 1})
    store.forget_memory()
    assert store.get(key) is None
    assert store.stats.io_errors == 1
    # The entry itself is untouched — not quarantined.
    assert store.stats.quarantined == 0
    assert store.path_for(key).exists()


def test_io_error_on_write_returns_false(tmp_path):
    def before_write(key, path):
        raise OSError("injected")

    store = PersistentStore(tmp_path / "s", hooks=_Hooks(before_write=before_write))
    key = spec_key("mst", SPEC)
    assert store.put(key, {"x": 1}) is False
    assert store.stats.io_errors == 1
    assert not store.path_for(key).exists()


def test_verify_scans_and_quarantines(store):
    keys = [spec_key("mst", SPEC, seed=i) for i in range(3)]
    for i, key in enumerate(keys):
        store.put(key, {"i": i})
    store.path_for(keys[1]).write_bytes(b"damaged")
    intact, quarantined = store.verify()
    assert intact == 2
    assert quarantined == 1
    assert store.entry_count() == 2


def test_spec_key_is_content_addressed():
    base = spec_key("mst", SPEC, seed=0)
    assert base == spec_key("mst", InstanceSpec("grid", (5, 5), partition=("voronoi", 5, 1)), seed=0)
    assert base != spec_key("mincut", SPEC, seed=0)
    assert base != spec_key("mst", SPEC, seed=1)
    assert base != spec_key(
        "mst", InstanceSpec("grid", (5, 5), partition=("voronoi", 5, 2)), seed=0
    )
    assert base != spec_key(
        "mst",
        InstanceSpec("grid", (5, 5), weights=("unique", 1), partition=("voronoi", 5, 1)),
        seed=0,
    )
    # Keyword order does not matter; values do.
    assert spec_key("q", SPEC, a=1, b=2) == spec_key("q", SPEC, b=2, a=1)
    assert len(base) == 64 and all(c in "0123456789abcdef" for c in base)
