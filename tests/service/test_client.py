"""Tests for the client SDK: backoff schedule, retry discipline."""

import urllib.error

import pytest

from repro.analysis.instances import InstanceSpec
from repro.service.client import ServiceClient, ServiceError, spec_to_json
from repro.service.server import parse_spec

SPEC = InstanceSpec(
    "grid", (5, 5), weights=("unique", 3), partition=("voronoi", 5, 1)
)


def scripted_client(script, **kwargs):
    """A client whose HTTP layer replays a scripted outcome sequence.

    Script entries: ``("ok", payload)``, ``(status, payload, headers)``,
    or ``("raise", exception)``.  Sleeps are recorded, not taken.
    """
    sleeps = []
    kwargs.setdefault("backoff_base_s", 0.1)
    kwargs.setdefault("jitter_seed", 7)
    client = ServiceClient(
        "http://service.invalid", sleep=sleeps.append, **kwargs
    )
    log = []

    def fake_http(method, path, body=None):
        log.append((method, path))
        entry = script.pop(0)
        if entry[0] == "raise":
            raise entry[1]
        if entry[0] == "ok":
            return 200, {"result": entry[1], "key": "k", "warm": False}, {}
        status, payload, headers = entry
        return status, payload, headers

    client._http = fake_http
    return client, sleeps, log


def test_spec_json_roundtrips_through_server_parser():
    assert parse_spec(spec_to_json(SPEC)) == SPEC
    bare = InstanceSpec("grid", (4, 4))
    assert parse_spec(spec_to_json(bare)) == bare


def test_success_first_try():
    client, sleeps, log = scripted_client([("ok", {"x": 1})])
    result = client.request("mst", SPEC)
    assert result.result == {"x": 1}
    assert result.attempts == 1
    assert sleeps == []
    assert log == [("POST", "/v1/mst")]


def test_retries_on_503_then_succeeds():
    client, sleeps, _log = scripted_client(
        [
            (503, {"error": "full", "kind": "overload"}, {}),
            (503, {"error": "full", "kind": "overload"}, {}),
            ("ok", {"x": 2}),
        ]
    )
    result = client.request("mst", SPEC)
    assert result.result == {"x": 2}
    assert result.attempts == 3
    assert client.retries_used == 2
    assert len(sleeps) == 2


def test_retries_on_transport_error():
    client, sleeps, _log = scripted_client(
        [
            ("raise", urllib.error.URLError("refused")),
            ("ok", {"x": 3}),
        ]
    )
    assert client.request("mst", SPEC).result == {"x": 3}
    assert len(sleeps) == 1


def test_retries_on_504_deadline():
    client, _sleeps, _log = scripted_client(
        [
            (504, {"error": "deadline expired", "kind": "deadline"}, {}),
            ("ok", {"x": 4}),
        ]
    )
    result = client.request("mst", SPEC)
    assert result.result == {"x": 4}


def test_permanent_4xx_fails_immediately():
    client, sleeps, log = scripted_client(
        [(400, {"error": "bad spec", "kind": "bad-request"}, {})]
    )
    with pytest.raises(ServiceError) as info:
        client.request("mst", SPEC)
    assert info.value.status == 400
    assert info.value.kind == "bad-request"
    assert sleeps == []
    assert len(log) == 1


def test_exhausted_retries_raise_last_error():
    script = [(503, {"error": "full", "kind": "overload"}, {})] * 3
    client, sleeps, _log = scripted_client(script, max_retries=2)
    with pytest.raises(ServiceError) as info:
        client.request("mst", SPEC)
    assert info.value.status == 503
    assert info.value.kind == "overload"
    assert len(sleeps) == 2


def test_retry_after_header_overrides_backoff():
    client, sleeps, _log = scripted_client(
        [
            (503, {"error": "full", "kind": "overload"}, {"Retry-After": "0.25"}),
            ("ok", {"x": 5}),
        ]
    )
    client.request("mst", SPEC)
    assert sleeps == [0.25]


def test_backoff_is_capped_exponential_with_jitter():
    client = ServiceClient(
        "http://service.invalid",
        backoff_base_s=0.1,
        backoff_cap_s=0.4,
        jitter_seed=11,
    )
    delays = [client.backoff_delay(attempt) for attempt in range(6)]
    # Jitter keeps every delay within [cap/2, cap] of its exponential.
    for attempt, delay in enumerate(delays):
        capped = min(0.4, 0.1 * 2 ** attempt)
        assert capped / 2 <= delay <= capped
    # The cap binds from attempt 2 on.
    assert all(delay <= 0.4 for delay in delays[2:])
    # Seeded jitter is reproducible.
    twin = ServiceClient(
        "http://service.invalid",
        backoff_base_s=0.1,
        backoff_cap_s=0.4,
        jitter_seed=11,
    )
    assert delays == [twin.backoff_delay(attempt) for attempt in range(6)]


def test_bad_retry_after_falls_back_to_backoff():
    client = ServiceClient("http://service.invalid", jitter_seed=3)
    delay = client.backoff_delay(0, retry_after="soon")
    assert 0 < delay <= client.backoff_base_s


def test_http_date_retry_after_is_honoured():
    import email.utils
    import time as time_module

    client = ServiceClient("http://service.invalid", jitter_seed=5)
    future = email.utils.formatdate(time_module.time() + 120, usegmt=True)
    delay = client.backoff_delay(0, retry_after=future)
    # Formatting truncates to whole seconds; allow that plus test slack.
    assert 115 <= delay <= 120


def test_past_http_date_clamps_to_zero():
    client = ServiceClient("http://service.invalid", jitter_seed=5)
    past = "Wed, 21 Oct 2015 07:28:00 GMT"
    assert client.backoff_delay(0, retry_after=past) == 0.0


def test_unparseable_http_date_falls_back_to_backoff():
    client = ServiceClient("http://service.invalid", jitter_seed=5)
    for header in ("Wed, 99 Oct 2015 07:28:00 GMT", "next tuesday", ""):
        delay = client.backoff_delay(0, retry_after=header)
        assert 0 < delay <= client.backoff_base_s


def test_http_date_retry_after_through_request_path():
    import email.utils
    import time as time_module

    stamp = email.utils.formatdate(time_module.time() + 60, usegmt=True)
    client, sleeps, _log = scripted_client(
        [
            (503, {"error": "full", "kind": "overload"}, {"Retry-After": stamp}),
            ("ok", {"x": 5}),
        ]
    )
    client.request("mst", SPEC)
    assert len(sleeps) == 1
    assert 55 <= sleeps[0] <= 60
