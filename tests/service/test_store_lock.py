"""Cross-process advisory locking of the persistent store.

The hazard the lock closes: process A opens a store (whose constructor
sweeps stale ``*.tmp`` files) while process B is mid-commit — between
writing its temp file and publishing it with ``os.replace``.  Without
the lock, A's sweep can unlink B's temp file and B's healthy commit is
lost.  These tests drive a real second interpreter process through the
store's own lock to prove the exclusion is effective across processes,
not just threads.
"""

import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.analysis.instances import InstanceSpec
from repro.service import store as store_module
from repro.service.store import (
    LOCK_FILE,
    KilledWriter,
    PersistentStore,
    TMP_SUFFIX,
    _Hooks,
    spec_key,
)

fcntl = pytest.importorskip("fcntl")

SPEC = InstanceSpec("grid", (5, 5), partition=("voronoi", 5, 1))

# The child holds the store's own _process_lock, reports it via a
# marker file, and releases only when told — a deterministic stand-in
# for "another process is mid-commit".
HOLDER_SCRIPT = """
import sys, time
from pathlib import Path
import repro.analysis.instances  # break the service <-> analysis import cycle
from repro.service.store import PersistentStore

root, locked, release = Path(sys.argv[1]), Path(sys.argv[2]), Path(sys.argv[3])
store = PersistentStore(root)
with store._process_lock():
    locked.touch()
    deadline = time.monotonic() + 30
    while not release.exists():
        if time.monotonic() > deadline:
            sys.exit(2)
        time.sleep(0.01)
"""


def _wait_for(path: Path, timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while not path.exists():
        if time.monotonic() > deadline:
            raise AssertionError(f"timed out waiting for {path}")
        time.sleep(0.01)


def test_lock_excludes_second_process(tmp_path):
    root = tmp_path / "store"
    store = PersistentStore(root)
    locked = tmp_path / "locked.marker"
    release = tmp_path / "release.marker"
    child = subprocess.Popen(
        [sys.executable, "-c", HOLDER_SCRIPT, str(root), str(locked), str(release)],
        env=dict(os.environ),
    )
    try:
        _wait_for(locked)
        # While the child holds the lock, this process cannot take it.
        with open(root / LOCK_FILE, "a+b") as handle:
            with pytest.raises(BlockingIOError):
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        # An orphan planted now must survive until the child releases:
        # sweep_tmp blocks on the lock instead of racing the "commit".
        shard = root / "ab"
        shard.mkdir(exist_ok=True)
        orphan = shard / f"entry.json.999.1{TMP_SUFFIX}"
        orphan.write_text("half-written")
        release.touch()
        assert child.wait(timeout=30) == 0
        assert store.sweep_tmp() == 1
        assert not orphan.exists()
    finally:
        release.touch()
        if child.poll() is None:
            child.kill()
            child.wait()


def test_two_process_put_and_sweep_storm(tmp_path):
    """Concurrent writers + sweeping reopeners never lose a commit."""
    root = tmp_path / "store"
    writer = """
import sys
from repro.analysis.instances import InstanceSpec
from repro.service.store import PersistentStore, spec_key

spec = InstanceSpec("grid", (5, 5), partition=("voronoi", 5, 1))
# Reopen per batch: every constructor runs the orphan sweep, so the
# two processes continuously interleave sweeps with commits.
lane = int(sys.argv[2])
for batch in range(5):
    store = PersistentStore(sys.argv[1])
    for index in range(10):
        key = spec_key("mst", spec, lane=lane, batch=batch, index=index)
        assert store.put(key, {"lane": lane, "batch": batch, "index": index})
"""
    children = [
        subprocess.Popen(
            [sys.executable, "-c", writer, str(root), str(lane)],
            env=dict(os.environ),
        )
        for lane in (0, 1)
    ]
    for child in children:
        assert child.wait(timeout=60) == 0
    survivor = PersistentStore(root)
    for lane in (0, 1):
        for batch in range(5):
            for index in range(10):
                key = spec_key(
                    "mst", SPEC, lane=lane, batch=batch, index=index
                )
                assert survivor.get(key) == {
                    "lane": lane,
                    "batch": batch,
                    "index": index,
                }


def test_killed_writer_releases_lock(tmp_path):
    """The simulated mid-commit kill must not leave the lock held."""

    def kill(key, tmp):
        raise KilledWriter()

    store = PersistentStore(tmp_path / "store", hooks=_Hooks(during_commit=kill))
    with pytest.raises(KilledWriter):
        store.put(spec_key("mst", SPEC), {"x": 1})
    # The lock is free again: the orphan sweep acquires it and removes
    # the temp file the killed commit left behind.
    assert store.sweep_tmp() == 1


def test_lock_file_is_not_an_entry(tmp_path):
    store = PersistentStore(tmp_path / "store")
    key = spec_key("mst", SPEC)
    store.put(key, {"x": 1})
    assert (store.root / LOCK_FILE).exists()
    assert list(store.keys()) == [key]
    assert store.sweep_tmp() == 0
    assert (store.root / LOCK_FILE).exists()


def test_lock_degrades_without_fcntl(tmp_path, monkeypatch):
    monkeypatch.setattr(store_module, "fcntl", None)
    store = PersistentStore(tmp_path / "store")
    key = spec_key("mst", SPEC)
    assert store.put(key, {"x": 1})
    assert store.get(key) == {"x": 1}
    assert store.sweep_tmp() == 0
