"""Tests for the service broker and its HTTP transport."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.analysis.instances import InstanceSpec, clear_instance_cache
from repro.service.server import (
    OPERATIONS,
    PARAM_DEFAULTS,
    ShortcutService,
    parse_spec,
    serve,
)
from repro.service.store import PersistentStore


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_instance_cache()
    yield
    clear_instance_cache()


GRID = {
    "family": "grid",
    "params": [5, 5],
    "weights": ["unique", 3],
    "partition": ["voronoi", 5, 1],
}


def request_body(seed=0, **extra):
    body = {"spec": dict(GRID), "seed": seed}
    body.update(extra)
    return body


@pytest.fixture
def service(tmp_path):
    service = ShortcutService(PersistentStore(tmp_path / "store"), workers=2)
    yield service
    service.close()


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------


def test_parse_spec_roundtrip():
    spec = parse_spec(GRID)
    assert spec == InstanceSpec(
        "grid", (5, 5), weights=("unique", 3), partition=("voronoi", 5, 1)
    )


@pytest.mark.parametrize(
    "raw",
    [
        "not a dict",
        {},  # no family
        {"family": 7},
        {"family": "grid", "bogus": 1},
        {"family": "grid", "params": "not-a-list"},
        {"family": "grid", "params": [5, 5], "tree_root": "zero"},
    ],
)
def test_parse_spec_rejects_malformed(raw):
    from repro.service.server import BadRequest

    with pytest.raises(BadRequest):
        parse_spec(raw)


def test_unknown_op_is_bad_request(service):
    response = service.handle("frobnicate", request_body())
    assert response.status == 400
    assert response.body["kind"] == "bad-request"


@pytest.mark.parametrize(
    "body",
    [
        {},  # no spec
        {"spec": GRID, "bogus": True},
        {"spec": GRID, "mode": "warp"},
        {"spec": GRID, "backend": "warp"},
        {"spec": GRID, "seed": "zero"},
    ],
)
def test_malformed_request_is_400(service, body):
    response = service.handle("mst", body)
    assert response.status == 400
    assert response.body["kind"] == "bad-request"


def test_unknown_family_is_unprocessable(service):
    response = service.handle(
        "mst", {"spec": {"family": "nonsense", "params": []}}
    )
    assert response.status == 422
    assert response.body["kind"] == "unprocessable"
    assert "nonsense" in response.body["error"]


def test_mst_needs_weights(service):
    response = service.handle(
        "mst", {"spec": {"family": "grid", "params": [4, 4]}}
    )
    assert response.status == 422
    assert "weighted" in response.body["error"]


def test_shortcut_needs_partition(service):
    response = service.handle(
        "shortcut", {"spec": {"family": "grid", "params": [4, 4]}}
    )
    assert response.status == 422
    assert "partition" in response.body["error"]


# ----------------------------------------------------------------------
# Caching and single-flight
# ----------------------------------------------------------------------


def test_second_request_is_warm(service):
    cold = service.handle("mst", request_body())
    assert cold.status == 200 and cold.body["warm"] is False
    warm = service.handle("mst", request_body())
    assert warm.status == 200 and warm.body["warm"] is True
    assert warm.body["result"] == cold.body["result"]
    assert service.stats.computed == 1
    assert service.stats.warm_hits == 1


def test_warm_across_service_restart(tmp_path):
    first = ShortcutService(PersistentStore(tmp_path / "store"), workers=2)
    cold = first.handle("mst", request_body())
    first.close()
    second = ShortcutService(PersistentStore(tmp_path / "store"), workers=2)
    try:
        warm = second.handle("mst", request_body())
        assert warm.status == 200 and warm.body["warm"] is True
        assert warm.body["result"] == cold.body["result"]
        assert second.stats.computed == 0
    finally:
        second.close()


@pytest.fixture
def sleepy_op():
    """A registered operation that blocks until released."""
    release = threading.Event()
    started = threading.Event()
    calls = []

    def op(instance, params):
        calls.append(params["seed"])
        started.set()
        release.wait(timeout=10)
        return {"seed": params["seed"], "n": instance.topology.n}

    OPERATIONS["sleepy"] = op
    yield started, release, calls
    release.set()
    del OPERATIONS["sleepy"]


def test_single_flight_deduplicates(service, sleepy_op):
    started, release, calls = sleepy_op
    responses = []

    def fire():
        responses.append(service.handle("sleepy", request_body()))

    threads = [threading.Thread(target=fire) for _ in range(3)]
    threads[0].start()
    assert started.wait(timeout=10)
    for thread in threads[1:]:
        thread.start()
    # All three wait on one computation.
    time.sleep(0.05)
    release.set()
    for thread in threads:
        thread.join(timeout=10)
    assert [r.status for r in responses] == [200, 200, 200]
    assert len({json.dumps(r.body["result"]) for r in responses}) == 1
    assert len(calls) == 1
    assert service.stats.singleflight_joined == 2
    assert service.stats.computed == 1


def test_load_shedding_returns_503_with_retry_after(tmp_path, sleepy_op):
    started, release, _calls = sleepy_op
    service = ShortcutService(
        PersistentStore(tmp_path / "store"), workers=1, queue_limit=1
    )
    try:
        background = threading.Thread(
            target=service.handle, args=("sleepy", request_body(seed=1))
        )
        background.start()
        assert started.wait(timeout=10)
        # Queue full: a *different* computation is shed immediately.
        shed = service.handle("sleepy", request_body(seed=2))
        assert shed.status == 503
        assert shed.body["kind"] == "overload"
        assert shed.retry_after_s is not None
        assert service.stats.shed == 1
        # An identical one joins the in-flight future instead.
        join = threading.Thread(
            target=service.handle, args=("sleepy", request_body(seed=1))
        )
        join.start()
        time.sleep(0.05)
        release.set()
        background.join(timeout=10)
        join.join(timeout=10)
        assert service.stats.singleflight_joined == 1
    finally:
        release.set()
        service.close()


def test_deadline_expiry_is_504_then_warm(service, sleepy_op):
    started, release, _calls = sleepy_op
    expired = service.handle(
        "sleepy", request_body(seed=3), deadline_s=0.05
    )
    assert expired.status == 504
    assert expired.body["kind"] == "deadline"
    assert service.stats.deadline_expired == 1
    # The computation finished in the background and populated the
    # store: the retry lands warm.
    release.set()
    deadline = time.time() + 10
    while time.time() < deadline:
        retry = service.handle("sleepy", request_body(seed=3))
        if retry.status == 200 and retry.body["warm"]:
            break
        time.sleep(0.02)
    assert retry.status == 200
    assert retry.body["warm"] is True


# ----------------------------------------------------------------------
# Batched cold misses
# ----------------------------------------------------------------------


BATCH_SPECS = [
    {
        "family": "grid",
        "params": [5, 5],
        "weights": ["unique", 3],
        "partition": ["voronoi", 5, 1],
    },
    {
        "family": "grid",
        "params": [6, 4],
        "weights": ["unique", 6],
        "partition": ["voronoi", 4, 2],
    },
    {
        "family": "grid",
        "params": [4, 6],
        "weights": ["unique", 7],
        "partition": ["voronoi", 6, 3],
    },
]


def test_batched_cold_misses_match_the_loop_path(tmp_path):
    # Per-instance reference answers from an unbatched service.
    loop = ShortcutService(store=None, workers=2)
    try:
        expected = [
            loop.handle("shortcut", {"spec": spec, "seed": 5}).body["result"]
            for spec in BATCH_SPECS
        ]
    finally:
        loop.close()

    service = ShortcutService(
        PersistentStore(tmp_path / "store"),
        workers=2,
        batch_window_s=0.25,
        batch_limit=len(BATCH_SPECS),
    )
    responses = [None] * len(BATCH_SPECS)

    def fire(index):
        responses[index] = service.handle(
            "shortcut", {"spec": BATCH_SPECS[index], "seed": 5}
        )

    try:
        threads = [
            threading.Thread(target=fire, args=(i,))
            for i in range(len(BATCH_SPECS))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert [r.status for r in responses] == [200] * len(BATCH_SPECS)
        assert [r.body["result"] for r in responses] == expected
        assert all(r.body["warm"] is False for r in responses)
        # Every cold miss went through the grouped batch path and the
        # store is populated: the retry lands warm.
        assert service.stats.batched == len(BATCH_SPECS)
        assert service.stats.computed == len(BATCH_SPECS)
        warm = service.handle("shortcut", {"spec": BATCH_SPECS[0], "seed": 5})
        assert warm.status == 200 and warm.body["warm"] is True
    finally:
        service.close()


def test_batch_window_group_of_one_flushes_on_the_timer(tmp_path):
    loop = ShortcutService(store=None, workers=2)
    try:
        expected = loop.handle("quality", request_body()).body["result"]
    finally:
        loop.close()
    service = ShortcutService(
        PersistentStore(tmp_path / "store"),
        workers=2,
        batch_window_s=0.05,
        batch_limit=8,
    )
    try:
        # A single request must not wait forever for company: the
        # window timer flushes a group of one.
        response = service.handle("quality", request_body())
        assert response.status == 200
        assert response.body["result"] == expected
        assert service.stats.batched == 1
    finally:
        service.close()


def test_batched_invalid_spec_fails_alone(tmp_path):
    # A partitionless spec in the same window as a good one must fail
    # with the usual 422 while its neighbour still gets its answer.
    service = ShortcutService(
        PersistentStore(tmp_path / "store"),
        workers=2,
        batch_window_s=0.25,
        batch_limit=2,
    )
    bad = {"family": "grid", "params": [4, 4]}
    responses = {}

    def fire(label, spec):
        responses[label] = service.handle("shortcut", {"spec": spec})

    try:
        threads = [
            threading.Thread(target=fire, args=("good", BATCH_SPECS[0])),
            threading.Thread(target=fire, args=("bad", bad)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert responses["good"].status == 200
        assert responses["bad"].status == 422
        assert "partition" in responses["bad"].body["error"]
        assert service.stats.batched == 1
    finally:
        service.close()


def test_batching_disabled_by_default(service):
    response = service.handle("shortcut", {"spec": BATCH_SPECS[0]})
    assert response.status == 200
    assert service.stats.batched == 0


def test_stats_surface_batched_counter(tmp_path):
    with serve(
        PersistentStore(tmp_path / "store"),
        workers=2,
        batch_window_s=0.05,
    ) as handle:
        status, body = http_json(
            f"{handle.base_url}/v1/shortcut",
            {"spec": BATCH_SPECS[0]},
        )
        assert status == 200
        status, stats = http_json(f"{handle.base_url}/v1/stats")
        assert status == 200
        assert stats["service"]["batched"] == 1


# ----------------------------------------------------------------------
# Store degradation
# ----------------------------------------------------------------------


def test_serves_cold_path_without_store():
    service = ShortcutService(store=None, workers=2)
    try:
        first = service.handle("mst", request_body())
        second = service.handle("mst", request_body())
        assert first.status == second.status == 200
        assert first.body["result"] == second.body["result"]
        assert service.stats.computed == 2  # nothing to warm-hit
    finally:
        service.close()


def test_degrades_when_store_is_broken(tmp_path):
    from repro.service.store import _Hooks

    def explode(key, path):
        raise OSError("store offline")

    store = PersistentStore(
        tmp_path / "store",
        hooks=_Hooks(before_read=explode, before_write=explode),
    )
    service = ShortcutService(store, workers=2)
    try:
        first = service.handle("mst", request_body())
        second = service.handle("mst", request_body())
        assert first.status == second.status == 200
        assert first.body["result"] == second.body["result"]
        assert service.stats.store_failures > 0
    finally:
        service.close()


# ----------------------------------------------------------------------
# HTTP transport
# ----------------------------------------------------------------------


def http_json(url, body=None):
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"} if data else {}
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as resp:
            return resp.status, json.loads(resp.read().decode())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode())


def test_http_end_to_end(tmp_path):
    with serve(PersistentStore(tmp_path / "store"), workers=2) as handle:
        status, body = http_json(f"{handle.base_url}/healthz")
        assert (status, body) == (200, {"ok": True})

        status, body = http_json(f"{handle.base_url}/v1/ops")
        assert status == 200
        assert set(body["operations"]) == set(OPERATIONS)
        assert body["defaults"] == PARAM_DEFAULTS

        status, cold = http_json(
            f"{handle.base_url}/v1/connectivity", request_body()
        )
        assert status == 200 and cold["warm"] is False
        status, warm = http_json(
            f"{handle.base_url}/v1/connectivity", request_body()
        )
        assert status == 200 and warm["warm"] is True
        assert warm["result"] == cold["result"]

        status, stats = http_json(f"{handle.base_url}/v1/stats")
        assert status == 200
        assert stats["service"]["warm_hits"] == 1

        status, body = http_json(f"{handle.base_url}/nope")
        assert status == 404


def test_http_rejects_bad_json(tmp_path):
    with serve(None, workers=1) as handle:
        request = urllib.request.Request(
            f"{handle.base_url}/v1/mst",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=30) as resp:
                status, body = resp.status, json.loads(resp.read().decode())
        except urllib.error.HTTPError as error:
            status, body = error.code, json.loads(error.read().decode())
        assert status == 400
        assert body["kind"] == "bad-request"


def test_stats_surface_recovery_counters(tmp_path):
    store = PersistentStore(tmp_path / "store", memory_entries=1)
    service = ShortcutService(store, workers=2)
    try:
        recoveries = service.stats_payload()["recoveries"]
        assert recoveries == {
            "stores_retired": 0, "quarantined": 0, "evictions": 0,
        }
        # Two puts through a one-entry memory layer: one LRU eviction.
        store.put("entry-a", {"x": 1})
        store.put("entry-b", {"x": 2})
        # Corrupt entry-a on disk; the next read must quarantine it.
        store.forget_memory()
        store.path_for("entry-a").write_bytes(b"garbage")
        assert store.get("entry-a") is None
        recoveries = service.stats_payload()["recoveries"]
        assert recoveries["quarantined"] == 1
        assert recoveries["evictions"] >= 1
    finally:
        service.close()


def test_recovery_counters_survive_store_restart(tmp_path):
    store = PersistentStore(tmp_path / "store", memory_entries=1)
    service = ShortcutService(store, workers=2)
    try:
        store.put("entry-a", {"x": 1})
        store.forget_memory()
        store.path_for("entry-a").write_bytes(b"garbage")
        assert store.get("entry-a") is None
        # Restart: a fresh store instance starts its counters at zero,
        # but /v1/stats keeps the lifetime totals.
        service.store = PersistentStore(tmp_path / "store", memory_entries=1)
        payload = service.stats_payload()
        assert payload["store"]["quarantined"] == 0
        assert payload["recoveries"]["stores_retired"] == 1
        assert payload["recoveries"]["quarantined"] == 1
    finally:
        service.close()
