"""Tests for the seeded chaos harness.

The suite's contract — never a wrong answer under injected faults — is
exercised directly, plus the determinism and kill-seam guarantees the
harness itself promises.
"""

import json

import pytest

from repro.analysis.instances import InstanceSpec, clear_instance_cache
from repro.service.chaos import (
    ChaosViolation,
    FaultSchedule,
    default_chaos_specs,
    run_chaos_suite,
    simulate_killed_writer,
)
from repro.service.store import PersistentStore, spec_key

SMALL_SPECS = [
    (
        "grid",
        InstanceSpec(
            "grid", (4, 4), weights=("unique", 3), partition=("voronoi", 4, 1)
        ),
    ),
    (
        "hub",
        InstanceSpec(
            "hub", (12, 3), weights=("unique", 5), partition=("arcs", 12, 3, 1)
        ),
    ),
]


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_instance_cache()
    yield
    clear_instance_cache()


def run_small(tmp_path, sub, seed, **kwargs):
    kwargs.setdefault("specs", SMALL_SPECS)
    kwargs.setdefault("ops", ("mst", "connectivity"))
    kwargs.setdefault("rounds", 3)
    return run_chaos_suite(tmp_path / sub, seed=seed, **kwargs)


def test_chaos_suite_never_serves_wrong_answers(tmp_path):
    report = run_small(tmp_path, "storm", seed=3)
    assert report.wrong == 0
    assert report.requests > 0
    assert report.correct + report.clean_errors == report.requests
    # The aggressive default probabilities actually fired.
    assert sum(report.injected.values()) > 0
    # Any error the service did emit used a declared kind.
    assert all(kind for kind in report.error_kinds)
    # Whatever survived the storm decodes cleanly.
    assert report.store_intact >= 0
    # The post-storm batched round grouped its same-family cold misses
    # through the batch layer and every response ==-matched reference.
    assert report.batched >= 3


def test_chaos_injection_is_seed_deterministic(tmp_path):
    a = run_small(tmp_path, "a", seed=11)
    b = run_small(tmp_path, "b", seed=11)
    # The fault draw sequence is pure function of the seed.  (Outcome
    # counts like quarantines can differ: they depend on pool timing.)
    assert a.injected == b.injected
    assert a.wrong == b.wrong == 0


def test_different_seeds_draw_different_faults(tmp_path):
    a = run_small(tmp_path, "a", seed=1)
    b = run_small(tmp_path, "b", seed=2)
    assert a.wrong == b.wrong == 0
    # Not a hard guarantee for arbitrary seeds, but these two differ.
    assert a.injected != b.injected


def test_chaos_suite_over_http(tmp_path):
    report = run_small(
        tmp_path, "http", seed=5, rounds=2, use_http=True
    )
    assert report.wrong == 0
    assert report.http_requests == len(SMALL_SPECS) * 2


def test_default_specs_cover_distinct_families():
    pairs = default_chaos_specs()
    families = {spec.family for _, spec in pairs}
    assert len(families) == len(pairs) >= 3
    assert all(spec.weights and spec.partition for _, spec in pairs)


def test_simulate_killed_writer_contract(tmp_path):
    schedule = FaultSchedule(seed=0)
    store = PersistentStore(tmp_path / "s", hooks=schedule.hooks())
    spec = SMALL_SPECS[0][1]
    key = spec_key("mst", spec, seed=0)
    store.put(key, {"x": "old"})
    before = store.path_for(key).read_bytes()
    simulate_killed_writer(store, schedule, key, {"x": "new"})
    assert store.path_for(key).read_bytes() == before
    # Memory layer was dropped along with the dead process.
    assert store.get(key) == {"x": "old"}
    assert store.stats.hits_disk >= 1


def test_simulate_killed_writer_flags_a_leaky_commit(tmp_path):
    # A schedule whose kill seam never fires models a broken harness:
    # the commit completes, which the simulator must flag.
    schedule = FaultSchedule(seed=0)
    store = PersistentStore(tmp_path / "s")  # no hooks: kill can't fire
    key = spec_key("mst", SMALL_SPECS[0][1], seed=0)
    with pytest.raises(ChaosViolation):
        simulate_killed_writer(store, schedule, key, {"x": 1})


def test_fault_schedule_corrupts_only_existing_entries(tmp_path):
    schedule = FaultSchedule(seed=0, p_corrupt=1.0)
    store = PersistentStore(tmp_path / "s")
    assert schedule.corrupt_entry(store) is None  # nothing to damage
    key = spec_key("mst", SMALL_SPECS[0][1], seed=0)
    store.put(key, {"x": 1})
    damaged = schedule.corrupt_entry(store)
    assert damaged == key
    raw = store.path_for(key).read_bytes()
    envelope = None
    try:
        envelope = json.loads(raw)
    except (ValueError, UnicodeDecodeError):
        pass
    if envelope is not None:
        # Damage may still parse as JSON (bit flip inside a string),
        # but then the checksum can no longer match: a read must miss.
        assert store.get(key) is None or store.get(key) == {"x": 1}
    assert schedule.injected["corruptions"] == 1


def test_stats_recoveries_track_storm_quarantines(tmp_path):
    # A corruption-heavy schedule guarantees quarantines fire; the
    # harness itself raises ChaosViolation if /v1/stats loses any of
    # them across the per-round store restarts.
    schedule = FaultSchedule(seed=5, p_corrupt=0.9, p_kill=0.0)
    report = run_small(tmp_path, "storm", seed=5, schedule=schedule)
    assert report.wrong == 0
    assert report.injected["corruptions"] > 0
    assert report.quarantined > 0  # the counter moved
