"""Property-based application tests across every execution axis.

The end-to-end applications must return *centrally verifiable* answers
on random instances regardless of how they execute: graph family ×
partwise ``backend`` (simulate/direct) × construction ``mode``
(simulate/direct) × simulator ``engine`` (reference/batched).  The
oracles are classic centralized algorithms — Kruskal for the MST,
union-find for connectivity, exhaustive cut evaluation for the min-cut
upper bound — so a divergence in any layer surfaces as a wrong answer,
not just a changed round count.
"""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.apps.connectivity import connected_components
from repro.apps.mincut import approximate_min_cut
from repro.apps.mst import kruskal_reference, minimum_spanning_tree
from repro.graphs import generators
from repro.graphs.weights import weighted

settings.register_profile(
    "repro-apps",
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro-apps")

AXES = st.tuples(
    st.sampled_from(["simulate", "direct"]),   # partwise backend
    st.sampled_from(["simulate", "direct"]),   # construction mode
    st.sampled_from(["reference", "batched"]),  # simulator engine
)


# The delaunay family needs the optional geometry extra (numpy + scipy).
_KINDS = ["grid", "er", "hub"] + (
    ["delaunay"] if generators.geometry_available() else []
)


@st.composite
def graphs(draw):
    kind = draw(st.sampled_from(_KINDS))
    seed = draw(st.integers(0, 200))
    if kind == "grid":
        topology = generators.grid(draw(st.integers(3, 5)), draw(st.integers(3, 5)))
    elif kind == "er":
        topology = generators.erdos_renyi_connected(
            draw(st.integers(8, 22)), 0.2, seed=seed
        )
    elif kind == "delaunay":
        topology = generators.delaunay(draw(st.integers(10, 22)), seed=seed)
    else:
        topology = generators.cycle_with_hub(draw(st.integers(16, 32)), 4)
    return topology, seed


def _union_find_components(topology, alive):
    parent = list(range(topology.n))

    def find(x):
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for u, v in alive:
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[ru] = rv
    labels = {}
    for v in topology.nodes:
        root = find(v)
        labels.setdefault(root, []).append(v)
    return {v: min(group) for group in labels.values() for v in group}


@given(graphs(), AXES, st.integers(0, 50))
def test_mst_exact_on_every_axis(graph, axes, seed):
    topology, wseed = graph
    topology = weighted(topology, seed=wseed)
    backend, construct_mode, engine = axes
    result = minimum_spanning_tree(
        topology, params="doubling", seed=seed,
        backend=backend, construct_mode=construct_mode, engine=engine,
    )
    edges, weight = kruskal_reference(topology)
    assert result.weight == weight
    assert result.edges == edges
    # The round breakdown partitions each phase's ledger delta.
    for record in result.phase_records:
        assert record.construct_rounds >= 0
        assert record.aggregate_rounds > 0


@given(graphs(), AXES, st.integers(0, 50), st.integers(1, 5))
def test_connectivity_matches_union_find_on_every_axis(graph, axes, seed, modulus):
    topology, _wseed = graph
    backend, construct_mode, engine = axes
    alive = [edge for i, edge in enumerate(topology.edges) if i % modulus != 0]
    result = connected_components(
        topology, alive, seed=seed,
        use_shortcuts=bool(seed % 2), backend=backend,
        construct_mode=construct_mode, engine=engine,
    )
    expected = _union_find_components(topology, alive)
    assert result.labels == expected
    assert result.components == len(set(expected.values()))


@given(graphs(), st.sampled_from(["simulate", "direct"]), st.integers(0, 20))
def test_mincut_upper_bound_on_every_backend(graph, backend, seed):
    topology, _wseed = graph
    result = approximate_min_cut(topology, trees=3, seed=seed, backend=backend)
    # Any 1-respecting cut is a real cut: the reported value equals the
    # number of edges crossing the reported side.
    crossing = sum(
        1 for u, v in topology.edges if (u in result.side) != (v in result.side)
    )
    assert result.value == crossing
    assert result.cut_edges == frozenset(
        e for e in topology.edges if (e[0] in result.side) != (e[1] in result.side)
    )
    # ... and therefore an upper bound on the true minimum cut.
    min_degree = min(topology.degree(v) for v in topology.nodes)
    assert 0 < result.value
    assert len(result.side) < topology.n
    # The packing must never beat the trivial degree lower bound's
    # certificate-free sanity: a cut of value < edge connectivity is
    # impossible, and edge connectivity <= min degree.
    # (Exact comparison lives in tests/apps/test_mincut.py.)


# ----------------------------------------------------------------------
# Direct-backend regressions: weighted / disconnected / single-part
# ----------------------------------------------------------------------


def test_direct_backend_single_part_partition():
    """A one-part partition (Borůvka's final state) aggregates fine."""
    from repro.congest.trace import RoundLedger
    from repro.core.existence import greedy_capped_shortcut
    from repro.core.partwise import PartwiseEngine
    from repro.graphs import partitions
    from repro.graphs.spanning_trees import SpanningTree

    topology = generators.grid(4, 4)
    partition = partitions.whole(topology)
    tree = SpanningTree.bfs(topology, 0)
    shortcut, _unusable = greedy_capped_shortcut(tree, partition, 2)
    outputs = {}
    ledgers = {}
    for backend in ("simulate", "direct"):
        ledger = RoundLedger()
        engine = PartwiseEngine(
            topology, shortcut, seed=3, ledger=ledger, backend=backend
        )
        outputs[backend] = engine.minimum_per_part(
            {v: v + 5 for v in topology.nodes}, 2
        )
        ledgers[backend] = ledger
    assert outputs["direct"] == outputs["simulate"]
    assert all(value == 5 for value in outputs["direct"].values())
    assert ledgers["direct"].records == ledgers["simulate"].records


def test_direct_backend_disconnected_alive_subgraph():
    """Connectivity over a heavily disconnected alive set (singletons)."""
    topology = generators.grid(4, 4)
    result = connected_components(topology, [], seed=3, backend="direct")
    assert result.components == topology.n
    assert result.labels == {v: v for v in topology.nodes}


def test_direct_backend_weighted_duplicate_weights():
    """Ties broken identically in both backends (lexicographic codes)."""
    base = generators.grid(4, 4)
    uniform = base.with_weights({edge: 7 for edge in base.edges})
    results = {
        backend: minimum_spanning_tree(
            uniform, params="doubling", seed=11, backend=backend
        )
        for backend in ("simulate", "direct")
    }
    assert results["direct"].edges == results["simulate"].edges
    assert results["direct"].ledger.records == results["simulate"].ledger.records


def test_direct_backend_uncovered_nodes_stay_relays():
    """Partial-coverage partitions: uncovered nodes relay but never
    contribute or receive aggregates."""
    from repro.congest.trace import RoundLedger
    from repro.core.existence import greedy_capped_shortcut
    from repro.core.partwise import PartwiseEngine
    from repro.graphs import partitions
    from repro.graphs.spanning_trees import SpanningTree

    topology = generators.cycle_with_hub(24, 4)
    partition = partitions.cycle_arcs(24, 4, extra_nodes=1)
    tree = SpanningTree.bfs(topology, 24)
    shortcut, _unusable = greedy_capped_shortcut(tree, partition, 3)
    for backend in ("simulate", "direct"):
        engine = PartwiseEngine(
            topology, shortcut, seed=3, ledger=RoundLedger(), backend=backend
        )
        out = engine.minimum_per_part({v: v for v in engine.block_of}, 4)
        for index in range(partition.size):
            expected = min(partition.members(index))
            for v in partition.members(index):
                assert out[v] == expected
        assert out.get(24) is None
