"""Property-based tests for the core constructions (Lemmas 5, 7; Thm 3)."""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.core import quality
from repro.core.core_fast import core_fast, core_fast_reference
from repro.core.core_slow import core_slow, core_slow_reference
from repro.core.existence import best_certified
from repro.graphs import generators, partitions
from repro.graphs.spanning_trees import SpanningTree

settings.register_profile(
    "repro-construction",
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro-construction")


@st.composite
def instances(draw):
    side = draw(st.integers(3, 6))
    topology = generators.grid(side, side)
    tree = SpanningTree.bfs(topology, 0)
    n_parts = draw(st.integers(1, topology.n // 2))
    partition = partitions.voronoi(
        topology, n_parts, seed=draw(st.integers(0, 500))
    )
    return topology, tree, partition


@given(instances(), st.integers(1, 8))
def test_core_slow_distributed_equals_reference(instance, c):
    topology, tree, partition = instance
    outcome = core_slow(topology, tree, partition, c)
    ref_map, ref_unusable = core_slow_reference(tree, partition, c)
    got = {e: tuple(sorted(p)) for e, p in outcome.shortcut.edge_map.items()}
    assert got == dict(ref_map)
    assert outcome.unusable == ref_unusable


@given(instances(), st.integers(1, 8), st.integers(0, 100))
def test_core_fast_distributed_equals_reference(instance, c, shared_seed):
    topology, tree, partition = instance
    outcome = core_fast(topology, tree, partition, c, shared_seed=shared_seed)
    ref_map, ref_unusable = core_fast_reference(
        tree, partition, c, shared_seed, topology.n
    )
    got = {e: tuple(sorted(p)) for e, p in outcome.shortcut.edge_map.items()}
    assert got == dict(ref_map)
    assert outcome.unusable == ref_unusable


@given(instances(), st.integers(1, 8))
def test_core_slow_congestion_invariant(instance, c):
    topology, tree, partition = instance
    outcome = core_slow(topology, tree, partition, c)
    assert quality.shortcut_congestion(outcome.shortcut) <= 2 * c


@given(instances())
def test_core_slow_half_good_with_certified_parameters(instance):
    topology, tree, partition = instance
    point = best_certified(tree, partition)
    outcome = core_slow(topology, tree, partition, point.congestion)
    counts = quality.block_counts(outcome.shortcut)
    good = sum(1 for count in counts if count <= 3 * point.block)
    assert good >= partition.size / 2
