"""Property-based tests for the partwise engine (Theorem 2 / Lemma 3).

The engine's distributed outputs are compared against centralized
oracles on randomly generated shortcuts — including degenerate ones
(empty subgraphs, partial coverage) that unit tests don't reach.
"""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.core import quality
from repro.core.existence import greedy_capped_shortcut
from repro.core.partwise import PartwiseEngine
from repro.graphs import generators, partitions
from repro.graphs.spanning_trees import SpanningTree

settings.register_profile(
    "repro-partwise",
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro-partwise")


@st.composite
def engine_instances(draw):
    side = draw(st.integers(3, 6))
    topology = generators.grid(side, side)
    tree = SpanningTree.bfs(topology, draw(st.integers(0, topology.n - 1)))
    n_parts = draw(st.integers(1, max(1, topology.n // 4)))
    partition = partitions.voronoi(
        topology, n_parts, seed=draw(st.integers(0, 300))
    )
    cap = draw(st.integers(0, 10))
    shortcut, _ = greedy_capped_shortcut(tree, partition, cap)
    return topology, partition, shortcut


@given(engine_instances())
def test_leader_election_matches_oracle(instance):
    topology, partition, shortcut = instance
    engine = PartwiseEngine(topology, shortcut, seed=1)
    bound = max(1, quality.block_parameter(shortcut))
    leaders, knowledge = engine.elect_leaders(bound)
    for i in range(partition.size):
        assert leaders[i] == min(partition.members(i))
        for v in partition.members(i):
            assert knowledge[v] == leaders[i]


@given(engine_instances())
def test_count_blocks_matches_oracle(instance):
    topology, partition, shortcut = instance
    engine = PartwiseEngine(topology, shortcut, seed=2)
    truth = quality.block_counts(shortcut)
    bound = max(1, max(truth))
    counts, _verdict = engine.count_blocks(bound)
    for i in range(partition.size):
        assert counts[i] == truth[i]


@given(engine_instances(), st.integers(1, 4))
def test_count_blocks_limit_semantics(instance, b_limit):
    topology, partition, shortcut = instance
    engine = PartwiseEngine(topology, shortcut, seed=3)
    truth = quality.block_counts(shortcut)
    counts, _verdict = engine.count_blocks(b_limit)
    for i in range(partition.size):
        if truth[i] <= b_limit:
            assert counts[i] == truth[i]
        else:
            assert counts[i] is None


@given(engine_instances())
def test_minimum_per_part_matches_oracle(instance):
    topology, partition, shortcut = instance
    engine = PartwiseEngine(topology, shortcut, seed=4)
    bound = max(1, quality.block_parameter(shortcut))
    values = {v: (v * 17) % 101 for v in engine.block_of}
    out = engine.minimum_per_part(values, bound)
    for i in range(partition.size):
        expected = min((v * 17) % 101 for v in partition.members(i))
        for v in partition.members(i):
            assert out[v] == expected
