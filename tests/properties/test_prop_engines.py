"""Property-based tests of the engine contract (both engines).

Random topologies plus random send/wake-up/halt schedules, checking
the invariants spelled out in :mod:`repro.congest.engine`:

* messages sent in round ``r`` are delivered exactly at ``r + 1``;
* duplicate sends and non-neighbor sends raise on every engine;
* ``dropped_to_halted`` agrees between engines;
* same-seed runs are bit-for-bit reproducible;
* the batched engine's inlined bandwidth audit agrees with
  :func:`repro.congest.message.message_bits` on every payload shape.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.congest.algorithm import NodeAlgorithm
from repro.congest.engine import BatchedEngine, ENGINES
from repro.congest.message import check_message, message_bits
from repro.congest.simulator import Simulator
from repro.congest.topology import Topology
from repro.errors import BandwidthExceededError, SimulationError
from repro.graphs import generators

settings.register_profile(
    "repro-engines",
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro-engines")

ENGINE_NAMES = tuple(sorted(ENGINES))


@st.composite
def topologies(draw):
    kind = draw(st.sampled_from(["grid", "cycle", "er"]))
    if kind == "grid":
        return generators.grid(draw(st.integers(2, 6)), draw(st.integers(2, 6)))
    if kind == "cycle":
        return generators.cycle(draw(st.integers(3, 30)))
    return generators.erdos_renyi_connected(
        draw(st.integers(4, 30)), 0.2, seed=draw(st.integers(0, 100))
    )


class RandomSchedule(NodeAlgorithm):
    """Chaotic but reproducible traffic driven by each node's RNG.

    Each activation sends to a random subset of neighbors (round
    number embedded in the payload), sometimes schedules a wake-up a
    random distance into the future (possibly deep inside an idle
    stretch), and sometimes halts.  Receivers log
    ``(sender, sent_round, arrival_round)`` so tests can check the
    delivery-time invariant exactly.
    """

    def __init__(self, horizon: int, halt_rate: float = 0.05):
        super().__init__()
        self.horizon = horizon
        self.halt_rate = halt_rate

    def on_start(self, node):
        node.state.log = []
        self._act(node)

    def on_round(self, node, messages):
        for sender, payload in messages:
            node.state.log.append((sender, payload[1], node.round))
        self._act(node)

    def _act(self, node):
        rng = node.random
        if node.round >= self.horizon:
            return
        k = rng.randrange(node.degree + 1)
        for neighbor in rng.sample(node.neighbors, k):
            node.send(neighbor, ("m", node.round))
        if rng.random() < 0.4:
            node.wake_at(node.round + 1 + rng.randrange(2 * self.horizon))
        if rng.random() < self.halt_rate:
            node.halt()


@given(topologies(), st.integers(0, 50), st.integers(0, 3))
def test_engines_agree_on_random_schedules(topology, horizon, seed):
    results = {
        engine: Simulator(
            topology, RandomSchedule(horizon), seed=seed,
            trace_edges=True, engine=engine,
        ).run()
        for engine in ENGINE_NAMES
    }
    first = results[ENGINE_NAMES[0]]
    for engine in ENGINE_NAMES[1:]:
        other = results[engine]
        assert other.rounds == first.rounds
        assert other.messages == first.messages
        assert other.dropped_to_halted == first.dropped_to_halted
        assert other.edge_traffic == first.edge_traffic
        for v in topology.nodes:
            assert vars(other.states[v]) == vars(first.states[v])


@given(topologies(), st.integers(0, 40), st.integers(0, 3))
def test_no_delivery_before_next_round(topology, horizon, seed):
    for engine in ENGINE_NAMES:
        result = Simulator(
            topology, RandomSchedule(horizon), seed=seed, engine=engine
        ).run()
        for v in topology.nodes:
            for _sender, sent_round, arrival_round in result.states[v].log:
                assert arrival_round == sent_round + 1


@given(topologies(), st.integers(0, 40), st.integers(0, 5))
def test_same_seed_bit_for_bit(topology, horizon, seed):
    for engine in ENGINE_NAMES:
        a = Simulator(topology, RandomSchedule(horizon), seed=seed, engine=engine).run()
        b = Simulator(topology, RandomSchedule(horizon), seed=seed, engine=engine).run()
        assert a.rounds == b.rounds
        assert a.messages == b.messages
        assert a.dropped_to_halted == b.dropped_to_halted
        for v in topology.nodes:
            assert vars(a.states[v]) == vars(b.states[v])


class DoubleSend(NodeAlgorithm):
    def on_start(self, node):
        if node.id == 0:
            node.send(1, ("a",))
            node.send(1, ("b",))


class DoubleViaBroadcast(NodeAlgorithm):
    def on_start(self, node):
        if node.id == 0:
            node.send(node.neighbors[0], ("a",))
            node.broadcast(("b",))


class NonNeighborSend(NodeAlgorithm):
    def __init__(self, target: int):
        super().__init__()
        self.target = target

    def on_start(self, node):
        if node.id == 0:
            node.send(self.target, ("x",))


class Oversized(NodeAlgorithm):
    def on_start(self, node):
        if node.id == 0:
            node.send(1, ("huge", 2 ** 500))


@pytest.mark.parametrize("engine", ENGINE_NAMES)
def test_duplicate_send_raises(engine):
    pair = Topology(2, [(0, 1)])
    with pytest.raises(SimulationError):
        Simulator(pair, DoubleSend(), engine=engine).run()
    with pytest.raises(SimulationError):
        Simulator(pair, DoubleViaBroadcast(), engine=engine).run()


@pytest.mark.parametrize("engine", ENGINE_NAMES)
@pytest.mark.parametrize("target", [2, -1, 99])
def test_non_neighbor_send_raises(engine, target):
    path3 = Topology(3, [(0, 1), (1, 2)])
    with pytest.raises(SimulationError):
        Simulator(path3, NonNeighborSend(target), engine=engine).run()


@pytest.mark.parametrize("engine", ENGINE_NAMES)
def test_oversized_payload_raises(engine):
    pair = Topology(2, [(0, 1)])
    with pytest.raises(BandwidthExceededError):
        Simulator(pair, Oversized(), engine=engine).run()


# ----------------------------------------------------------------------
# Audit fast-path equivalence
# ----------------------------------------------------------------------

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-(2 ** 80), 2 ** 80),
    st.sampled_from(["tag", "x", "bfs", "child"]),
)
payloads = st.one_of(
    scalars,
    st.lists(scalars, max_size=6).map(tuple),
    # invalid shapes the audit must reject identically
    st.lists(st.integers(0, 3), max_size=3),
    st.tuples(st.sampled_from(["t"]), st.tuples(st.integers(0, 3))),
)


@given(payloads, st.integers(8, 200))
def test_fast_audit_matches_reference_audit(payload, limit):
    pair = Topology(2, [(0, 1)])
    engine = BatchedEngine(pair, NodeAlgorithm(), bandwidth_bits=limit)
    try:
        check_message(payload, limit)
        expected = None
    except BandwidthExceededError as exc:
        expected = type(exc)
    if expected is None:
        engine._audit_fast(payload)  # must not raise
        # and the fast path must agree a compliant payload is compliant
        assert message_bits(payload) <= limit
    else:
        with pytest.raises(expected):
            engine._audit_fast(payload)
