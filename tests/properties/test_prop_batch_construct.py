"""Property-based tests of the batched doubling-construction ladder.

Two invariants beyond the differential suite:

* **the lockstep ladder is the loop** — over random ragged batches
  (mixed grid/torus/hub/genus_chain families, mixed sizes, random
  seeds, optionally warm-started from starved searches), the vector
  ladder returns outcomes bit-identical to the per-instance doubling
  search, trials and ledgers included;
* **compaction never leaks state** — an instance's ladder outcome
  depends only on that instance: any sub-batch of a random batch
  returns exactly the rows the full batch returned for those
  instances, so neither rung compaction nor per-iteration wave
  compaction can couple neighbours.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.analysis.instances import InstanceSpec, hydrate
from repro.errors import ConstructionFailedError
from repro.graphs.batch_csr import numpy_available

settings.register_profile(
    "repro-batch",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro-batch")

needs_numpy = pytest.mark.skipif(
    not numpy_available(),
    reason="batch kernels need the fast-math extra (numpy)",
)


@st.composite
def ladder_batches(draw):
    """A ragged batch of 2-5 instances with per-instance seeds."""
    specs = []
    for _ in range(draw(st.integers(2, 5))):
        kind = draw(
            st.sampled_from(["grid", "torus", "hub", "genus_chain"])
        )
        seed = draw(st.integers(0, 30))
        if kind == "grid":
            rows = draw(st.integers(3, 6))
            cols = draw(st.integers(3, 6))
            spec = InstanceSpec(
                "grid", (rows, cols), partition=("voronoi", 4, seed)
            )
        elif kind == "torus":
            rows = draw(st.integers(3, 5))
            spec = InstanceSpec(
                "torus", (rows, rows), partition=("voronoi", 4, seed)
            )
        elif kind == "hub":
            cycle = draw(st.integers(12, 36))
            spec = InstanceSpec(
                "hub", (cycle, 4), partition=("arcs", cycle, 4, 1)
            )
        else:
            genus = draw(st.integers(1, 2))
            side = draw(st.integers(3, 4))
            spec = InstanceSpec(
                "genus_chain", (genus, side, side),
                partition=("voronoi", 4, seed),
            )
        specs.append(spec)
    seeds = draw(
        st.lists(
            st.integers(0, 2**31 - 1),
            min_size=len(specs),
            max_size=len(specs),
        )
    )
    return specs, seeds


def _assert_outcome_equal(reference, batched):
    assert batched.trials == reference.trials
    assert batched.c == reference.c
    assert batched.b == reference.b
    assert batched.result.iterations == reference.result.iterations
    assert batched.result.good_history == reference.result.good_history
    assert (
        batched.result.shortcut.subgraphs
        == reference.result.shortcut.subgraphs
    )
    assert batched.ledger == reference.ledger


@needs_numpy
@given(batch=ladder_batches())
def test_ladder_matches_per_instance_loop(batch):
    from repro.core.batch import find_shortcut_doubling_batch
    from repro.core.doubling import find_shortcut_doubling

    specs, seeds = batch
    instances = [hydrate(spec) for spec in specs]
    topologies = [instance.topology for instance in instances]
    trees = [instance.tree for instance in instances]
    partitions = [instance.partition for instance in instances]
    loop = [
        find_shortcut_doubling(t, tr, p, seed=s, mode="direct")
        for t, tr, p, s in zip(topologies, trees, partitions, seeds)
    ]
    vector = find_shortcut_doubling_batch(
        topologies, trees, partitions, seeds=seeds, batch="vector"
    )
    for reference, batched in zip(loop, vector):
        _assert_outcome_equal(reference, batched)


@needs_numpy
@given(data=st.data(), batch=ladder_batches())
def test_ladder_compaction_never_leaks(data, batch):
    from repro.core.batch import find_shortcut_doubling_batch

    specs, seeds = batch
    instances = [hydrate(spec) for spec in specs]
    topologies = [instance.topology for instance in instances]
    trees = [instance.tree for instance in instances]
    partitions = [instance.partition for instance in instances]
    full = find_shortcut_doubling_batch(
        topologies, trees, partitions, seeds=seeds, batch="vector"
    )
    picked = data.draw(
        st.lists(
            st.integers(0, len(specs) - 1),
            min_size=1,
            max_size=len(specs),
            unique=True,
        )
    )
    sub = find_shortcut_doubling_batch(
        [topologies[index] for index in picked],
        [trees[index] for index in picked],
        [partitions[index] for index in picked],
        seeds=[seeds[index] for index in picked],
        batch="vector",
    )
    for position, index in enumerate(picked):
        _assert_outcome_equal(full[index], sub[position])


@needs_numpy
@given(batch=ladder_batches())
def test_warm_started_ladder_matches_loop(batch):
    from repro.core.batch import find_shortcut_doubling_batch
    from repro.core.doubling import find_shortcut_doubling
    from repro.core.find_shortcut import find_shortcut

    specs, seeds = batch
    instances = [hydrate(spec) for spec in specs]
    topologies = [instance.topology for instance in instances]
    trees = [instance.tree for instance in instances]
    partitions = [instance.partition for instance in instances]
    # Starve a (1, 1) search to harvest real mid-construction states;
    # instances that finish within the budget re-enter cold.
    states = []
    for t, tr, p, s in zip(topologies, trees, partitions, seeds):
        try:
            find_shortcut(
                t, tr, p, 1, 1, seed=s, max_iterations=1, mode="direct"
            )
            states.append(None)
        except ConstructionFailedError as error:
            states.append(error.state)
    loop = [
        find_shortcut_doubling(
            t, tr, p, seed=s, c_start=2, b_start=2, initial_state=state,
            mode="direct",
        )
        for t, tr, p, s, state in zip(
            topologies, trees, partitions, seeds, states
        )
    ]
    vector = find_shortcut_doubling_batch(
        topologies, trees, partitions, seeds=seeds,
        c_starts=2, b_starts=2, initial_states=states, batch="vector",
    )
    for reference, batched in zip(loop, vector):
        _assert_outcome_equal(reference, batched)
