"""Property-based end-to-end MST tests."""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.apps.mst import kruskal_reference, minimum_spanning_tree
from repro.apps.mst_baselines import mst_kutten_peleg, mst_no_shortcut
from repro.graphs import generators
from repro.graphs.weights import weighted

settings.register_profile(
    "repro-mst",
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro-mst")


# The delaunay family needs the optional geometry extra (numpy + scipy).
_KINDS = ["grid", "er"] + (
    ["delaunay"] if generators.geometry_available() else []
)


@st.composite
def weighted_graphs(draw):
    kind = draw(st.sampled_from(_KINDS))
    seed = draw(st.integers(0, 200))
    if kind == "grid":
        topology = generators.grid(draw(st.integers(3, 5)), draw(st.integers(3, 5)))
    elif kind == "er":
        topology = generators.erdos_renyi_connected(
            draw(st.integers(8, 25)), 0.2, seed=seed
        )
    else:
        topology = generators.delaunay(draw(st.integers(10, 25)), seed=seed)
    return weighted(topology, seed=seed)


@given(weighted_graphs(), st.integers(0, 50))
def test_shortcut_mst_is_exact(topology, seed):
    result = minimum_spanning_tree(topology, params="doubling", seed=seed)
    edges, weight = kruskal_reference(topology)
    assert result.weight == weight
    assert result.edges == edges


@given(weighted_graphs(), st.integers(0, 50))
def test_baselines_are_exact(topology, seed):
    _edges, weight = kruskal_reference(topology)
    assert mst_no_shortcut(topology, seed=seed).weight == weight
    assert mst_kutten_peleg(topology, seed=seed).weight == weight
