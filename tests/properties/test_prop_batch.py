"""Property-based tests of the batch layer.

Two invariants beyond the differential suite:

* **padding never leaks** — an instance's batched results depend only
  on that instance, never on its neighbors in the packed arrays: any
  sub-batch (including a batch of one) of a random ragged batch
  returns exactly the rows the full batch returned for those
  instances;
* **chunked fan-out is deterministic** — :func:`parallel_map_chunked`
  returns the same results at any ``REPRO_JOBS`` × ``chunk_size``
  combination, because per-item seeds come from the global task index
  (:func:`chunk_seeds`), not from chunk or worker identity.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.analysis.instances import InstanceSpec, hydrate
from repro.analysis.parallel import (
    chunk_seeds,
    chunk_tasks,
    parallel_map,
    parallel_map_chunked,
    task_seed,
)
from repro.graphs.batch_csr import numpy_available

settings.register_profile(
    "repro-batch",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro-batch")

needs_numpy = pytest.mark.skipif(
    not numpy_available(),
    reason="batch kernels need the fast-math extra (numpy)",
)


@st.composite
def ragged_specs(draw):
    """A ragged batch of 2-6 instance specs with mixed families and n."""
    specs = []
    for _ in range(draw(st.integers(2, 6))):
        kind = draw(st.sampled_from(["grid", "torus", "hub"]))
        seed = draw(st.integers(0, 30))
        if kind == "grid":
            rows = draw(st.integers(3, 7))
            cols = draw(st.integers(3, 7))
            spec = InstanceSpec(
                "grid", (rows, cols), partition=("voronoi", 4, seed)
            )
        elif kind == "torus":
            rows = draw(st.integers(3, 6))
            spec = InstanceSpec(
                "torus", (rows, rows), partition=("voronoi", 4, seed)
            )
        else:
            cycle = draw(st.integers(12, 48))
            spec = InstanceSpec(
                "hub", (cycle, 4), partition=("arcs", cycle, 4, 1)
            )
        specs.append(spec)
    return specs


@needs_numpy
@given(data=st.data(), specs=ragged_specs())
def test_padding_never_leaks_across_instances(data, specs):
    from repro.core.batch import pipeline_batch_vector

    instances = [hydrate(spec) for spec in specs]
    topologies = [instance.topology for instance in instances]
    trees = [instance.tree for instance in instances]
    partitions = [instance.partition for instance in instances]
    b_limits = data.draw(
        st.lists(
            st.integers(1, 4), min_size=len(specs), max_size=len(specs)
        )
    )
    full = pipeline_batch_vector(topologies, trees, partitions, 2, b_limits)

    picked = data.draw(
        st.lists(
            st.integers(0, len(specs) - 1),
            min_size=1,
            max_size=len(specs),
            unique=True,
        )
    )
    sub = pipeline_batch_vector(
        [topologies[index] for index in picked],
        [trees[index] for index in picked],
        [partitions[index] for index in picked],
        2,
        [b_limits[index] for index in picked],
    )
    assert sub == [full[index] for index in picked]


def _seeded_chunk(start, items):
    # Honors the global-index seeding contract: item i's result uses
    # task_seed(base, start + offset), exactly as a per-task run would.
    seeds = chunk_seeds(7, start, len(items))
    return [item * 1000 + seed % 997 for item, seed in zip(items, seeds)]


def _seeded_task(task):
    index, item = task
    return item * 1000 + task_seed(7, index) % 997


@given(
    count=st.integers(0, 23),
    chunk_size=st.integers(1, 9),
    jobs=st.sampled_from([1, 2, 3]),
)
def test_chunked_fanout_matches_per_task_run(count, chunk_size, jobs):
    tasks = list(range(100, 100 + count))
    per_task = parallel_map(_seeded_task, list(enumerate(tasks)), jobs=1)
    chunked = parallel_map_chunked(
        _seeded_chunk, tasks, chunk_size=chunk_size, jobs=jobs
    )
    assert chunked == per_task


def test_chunk_tasks_cover_everything_in_order():
    chunks = chunk_tasks(range(10), 3)
    assert [start for start, _items in chunks] == [0, 3, 6, 9]
    assert [items for _start, items in chunks] == [
        [0, 1, 2], [3, 4, 5], [6, 7, 8], [9]
    ]
    assert chunk_tasks([], 4) == []
    with pytest.raises(ValueError):
        chunk_tasks(range(3), 0)


def test_chunk_seeds_are_global_index_seeds():
    assert chunk_seeds(42, 5, 3) == [task_seed(42, 5 + k) for k in range(3)]
