"""Property-based tests for the direct construction kernels.

Direct-mode FindShortcut must satisfy the Theorem 3 invariants on
arbitrary instances from the paper's graph classes — random planar
grids/Delaunay triangulations, bounded-treewidth k-trees, and
bounded-genus chains — and must stay bit-for-bit interchangeable with
simulate mode wherever we spot-check it.
"""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.core import quality
from repro.core.construct_fast import verification_counts_direct
from repro.core.core_slow import core_slow
from repro.core.existence import best_certified
from repro.core.find_shortcut import find_shortcut
from repro.core.verification import verification
from repro.graphs import generators, partitions
from repro.graphs.spanning_trees import SpanningTree

settings.register_profile(
    "repro-construct",
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro-construct")


# The delaunay family needs the optional geometry extra (numpy + scipy).
_FAMILIES = ["grid", "ktree", "genus"] + (
    ["delaunay"] if generators.geometry_available() else []
)


@st.composite
def instances(draw):
    """One random instance from the planar/treewidth/genus families."""
    family = draw(st.sampled_from(_FAMILIES))
    seed = draw(st.integers(0, 400))
    if family == "grid":
        side = draw(st.integers(3, 6))
        topology = generators.grid(side, side)
    elif family == "delaunay":
        topology = generators.delaunay(draw(st.integers(12, 36)), seed % 7)
    elif family == "ktree":
        topology = generators.k_tree(
            draw(st.integers(10, 28)), draw(st.integers(2, 3)), seed % 11
        )
    else:
        topology = generators.genus_chain(
            draw(st.integers(1, 2)), 3, draw(st.integers(3, 5))
        )
    n_parts = draw(st.integers(1, max(1, topology.n // 3)))
    partition = partitions.voronoi(topology, n_parts, seed=seed)
    tree = SpanningTree.bfs(topology, 0)
    return topology, tree, partition


@given(instances(), st.integers(0, 50))
def test_direct_find_shortcut_theorem3_invariants(instance, seed):
    topology, tree, partition = instance
    point = best_certified(tree, partition)
    result = find_shortcut(
        topology, tree, partition, point.congestion, point.block,
        seed=seed, mode="direct",
    )
    # Block parameter <= 3b on every part.
    counts = quality.block_counts(result.shortcut)
    assert all(count <= 3 * point.block for count in counts)
    # Congestion <= the accumulated per-iteration bound (8c each for
    # the CoreFast sampling cap).
    measured = quality.shortcut_congestion(result.shortcut)
    assert measured <= 8 * point.congestion * result.iterations
    # Monotone shrinking `remaining`: each iteration freezes a fresh,
    # disjoint set of parts and together they cover the partition.
    seen = set()
    for good in result.good_history:
        assert not (good & seen)
        seen |= good
    assert seen == set(range(partition.size))


@given(instances(), st.integers(0, 50))
def test_direct_matches_simulate_on_random_instances(instance, seed):
    topology, tree, partition = instance
    point = best_certified(tree, partition)
    results = {
        mode: find_shortcut(
            topology, tree, partition, point.congestion, point.block,
            seed=seed, mode=mode,
        )
        for mode in ("simulate", "direct")
    }
    assert (
        results["direct"].shortcut.edge_map
        == results["simulate"].shortcut.edge_map
    )
    assert results["direct"].good_history == results["simulate"].good_history
    assert results["direct"].iterations == results["simulate"].iterations


@given(instances(), st.integers(1, 10), st.integers(1, 6))
def test_direct_verification_counts_match_truth(instance, c, b_limit):
    """The union-find verdicts agree with the quality layer's block
    counts on connected parts: a part is good iff its true count fits."""
    topology, tree, partition = instance
    outcome = core_slow(topology, tree, partition, c)
    counts = verification_counts_direct(topology, outcome.shortcut, b_limit)
    truth = quality.block_counts(outcome.shortcut)
    for index in range(partition.size):
        if truth[index] <= b_limit:
            assert counts[index] == truth[index]
        else:
            assert counts[index] is None
    # And the full verification outcome is mode-independent.
    verdicts = {
        mode: verification(topology, outcome.shortcut, b_limit, mode=mode)
        for mode in ("simulate", "direct")
    }
    assert verdicts["direct"].counts == verdicts["simulate"].counts
    assert verdicts["direct"].good_parts == verdicts["simulate"].good_parts
