"""Property-based tests for simulator invariants."""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.congest.algorithm import NodeAlgorithm
from repro.congest.simulator import Simulator
from repro.graphs import generators

settings.register_profile(
    "repro-sim",
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro-sim")


class GossipOnce(NodeAlgorithm):
    """Every node broadcasts its id once; receivers count arrivals."""

    def on_start(self, node):
        node.state.got = []
        node.broadcast(("g", node.id))

    def on_round(self, node, messages):
        for sender, payload in messages:
            node.state.got.append((sender, payload[1]))


class TokenWalk(NodeAlgorithm):
    """A token performs a deterministic pseudo-random walk for k steps."""

    def __init__(self, steps: int):
        super().__init__()
        self.steps = steps

    def on_start(self, node):
        node.state.visits = 0
        if node.id == 0 and self.steps > 0:
            self._forward(node, self.steps)

    def on_round(self, node, messages):
        for _sender, payload in messages:
            node.state.visits += 1
            remaining = payload[1]
            if remaining > 0:
                self._forward(node, remaining)

    def _forward(self, node, remaining):
        target = node.neighbors[node.random.randrange(node.degree)]
        node.send(target, ("t", remaining - 1))


@st.composite
def topologies(draw):
    kind = draw(st.sampled_from(["grid", "cycle", "er"]))
    if kind == "grid":
        return generators.grid(draw(st.integers(2, 6)), draw(st.integers(2, 6)))
    if kind == "cycle":
        return generators.cycle(draw(st.integers(3, 30)))
    return generators.erdos_renyi_connected(
        draw(st.integers(4, 30)), 0.2, seed=draw(st.integers(0, 100))
    )


@given(topologies())
def test_gossip_message_conservation(topology):
    """Messages delivered == messages sent == sum of degrees."""
    result = Simulator(topology, GossipOnce()).run()
    assert result.messages == 2 * topology.m
    for v in topology.nodes:
        senders = sorted(s for s, _ in result.states[v].got)
        assert senders == list(topology.neighbors(v))
        for sender, value in result.states[v].got:
            assert sender == value


@given(topologies())
def test_gossip_takes_one_round(topology):
    result = Simulator(topology, GossipOnce()).run()
    assert result.rounds == 1


@given(topologies(), st.integers(0, 30), st.integers(0, 5))
def test_token_walk_deterministic_per_seed(topology, steps, seed):
    a = Simulator(topology, TokenWalk(steps), seed=seed).run()
    b = Simulator(topology, TokenWalk(steps), seed=seed).run()
    assert a.rounds == b.rounds == steps
    visits_a = [a.states[v].visits for v in topology.nodes]
    visits_b = [b.states[v].visits for v in topology.nodes]
    assert visits_a == visits_b
    assert sum(visits_a) == steps  # the token is never lost or duplicated
