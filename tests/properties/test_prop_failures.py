"""Property-based tests for failure injection and incremental repair.

Three invariants over random instances and random failure sets:

* a repaired shortcut is always *valid* in the survivor (Definition 2
  structure plus a full Verification sweep at ``3b``);
* repair and rebuild are quality-comparable — both meet the same
  ``3b`` bar, and the repaired measured quality never exceeds its own
  declared ``(c, b)`` promise by more than the bar allows;
* the whole pipeline is deterministic under a fixed seed regardless of
  ``REPRO_JOBS`` worker count (compared on deterministic fields only —
  wall time is excluded).
"""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, assume, given, settings

from repro.analysis.parallel import parallel_map
from repro.core import quality
from repro.core.doubling import find_shortcut_doubling
from repro.failures.repair import (
    assert_valid,
    repair_shortcut,
    repair_vs_rebuild,
)
from repro.failures.scenarios import enumerate_kwise
from repro.graphs import generators, partitions
from repro.graphs.spanning_trees import SpanningTree

settings.register_profile(
    "repro-failures",
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro-failures")

_FAMILIES = ["grid", "torus", "hub"] + (
    ["delaunay"] if generators.geometry_available() else []
)


def _build(family, size_draw, seed):
    if family == "grid":
        topology = generators.grid(size_draw, size_draw)
        n_parts = size_draw
    elif family == "torus":
        topology = generators.torus(size_draw, size_draw)
        n_parts = size_draw
    elif family == "hub":
        topology = generators.cycle_with_hub(4 * size_draw, 4)
        n_parts = size_draw
    else:
        topology = generators.delaunay(5 * size_draw, seed % 5)
        n_parts = size_draw
    partition = partitions.voronoi(topology, n_parts, seed=seed)
    tree = SpanningTree.bfs(topology, 0)
    return topology, tree, partition


@st.composite
def failure_cases(draw):
    family = draw(st.sampled_from(_FAMILIES))
    size_draw = draw(st.integers(4, 5))
    seed = draw(st.integers(0, 100))
    topology, tree, partition = _build(family, size_draw, seed)
    k = draw(st.integers(1, 3))
    indices = draw(
        st.lists(
            st.integers(0, topology.m - 1), min_size=k, max_size=k, unique=True
        )
    )
    failed = frozenset(topology.edges[i] for i in indices)
    return topology, tree, partition, failed, seed


@given(failure_cases())
def test_repaired_shortcut_is_valid_in_survivor(case):
    topology, tree, partition, failed, seed = case
    survivor = topology.delete_edges(failed, require_connected=False)
    assume(survivor.is_connected)
    old = find_shortcut_doubling(
        topology, tree, partition, seed=seed, mode="direct"
    )
    repaired = repair_shortcut(topology, old, failed, seed=seed, mode="direct")
    assert_valid(repaired.survivor, repaired)
    # Coverage: every part is accounted for exactly once.
    assert repaired.frozen_parts | repaired.repaired_parts == set(
        range(repaired.partition.size)
    )
    assert not (repaired.frozen_parts & repaired.repaired_parts)
    # No failed edge survives anywhere in the result.
    for part in range(repaired.partition.size):
        assert not (repaired.shortcut.subgraph(part) & failed)


@given(failure_cases())
def test_repair_quality_comparable_to_rebuild(case):
    topology, tree, partition, failed, seed = case
    survivor = topology.delete_edges(failed, require_connected=False)
    assume(survivor.is_connected)
    old = find_shortcut_doubling(
        topology, tree, partition, seed=seed, mode="direct"
    )
    comparison = repair_vs_rebuild(
        topology, old, failed, seed=seed, mode="direct"
    )
    # repair_vs_rebuild already ==-verified both at their own 3b bar;
    # on top, the measured quality must honour the declared promises.
    for outcome in (comparison.repair, comparison.rebuild):
        report = quality.measure(
            outcome.shortcut, outcome.survivor, with_dilation=False
        )
        assert report.block_parameter <= 3 * outcome.b
        assert report.shortcut_congestion <= outcome.shortcut.size
    # Both sides answered the same instance.
    assert comparison.repair.partition.size == comparison.rebuild.partition.size
    assert comparison.repair.tree.root == comparison.rebuild.tree.root
    assert comparison.rounds_speedup > 0


def _repair_fingerprint(task):
    """Module-level worker (pickled by parallel_map): run one repair
    and return only its deterministic fields."""
    family, size_draw, seed, scenario_index = task
    topology, tree, partition = _build(family, size_draw, seed)
    scenarios = enumerate_kwise(topology, 2, limit=4, seed=seed)
    failed = scenarios[scenario_index % len(scenarios)].edges
    survivor = topology.delete_edges(failed, require_connected=False)
    if not survivor.is_connected:
        return ("disconnected", family, failed)
    old = find_shortcut_doubling(
        topology, tree, partition, seed=seed, mode="direct"
    )
    repaired = repair_shortcut(topology, old, failed, seed=seed, mode="direct")
    return (
        family,
        failed,
        repaired.c,
        repaired.b,
        repaired.rounds,
        tuple(sorted(repaired.frozen_parts)),
        tuple(sorted(repaired.repaired_parts)),
        tuple(
            tuple(sorted(repaired.shortcut.subgraph(part)))
            for part in range(repaired.partition.size)
        ),
        repaired.tree_rebuilt,
    )


@pytest.mark.parametrize("jobs", [2, 4])
def test_repair_deterministic_across_worker_counts(jobs):
    tasks = [
        (family, 4, seed, index)
        for family in _FAMILIES
        for seed in (3, 7)
        for index in (0, 1)
    ]
    serial = parallel_map(_repair_fingerprint, tasks, jobs=1)
    fanned = parallel_map(_repair_fingerprint, tasks, jobs=jobs)
    assert serial == fanned
    assert any(row[0] != "disconnected" for row in serial)
