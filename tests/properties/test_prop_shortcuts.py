"""Property-based tests (hypothesis) for shortcut invariants.

Random small instances: grid/ER topologies, Voronoi partitions, and
randomly capped greedy shortcuts.  The invariants checked here are the
structural heart of the paper; hypothesis explores the corners unit
tests miss.
"""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.core import quality
from repro.core.existence import (
    full_ancestor_shortcut,
    greedy_capped_shortcut,
)
from repro.graphs import generators, partitions
from repro.graphs.spanning_trees import SpanningTree

settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@st.composite
def instances(draw):
    kind = draw(st.sampled_from(["grid", "er", "torus"]))
    seed = draw(st.integers(0, 1000))
    if kind == "grid":
        side = draw(st.integers(3, 7))
        topology = generators.grid(side, side)
    elif kind == "torus":
        side = draw(st.integers(3, 5))
        topology = generators.torus(side, side)
    else:
        n = draw(st.integers(8, 40))
        topology = generators.erdos_renyi_connected(n, 0.15, seed=seed)
    n_parts = draw(st.integers(1, max(1, topology.n // 3)))
    partition = partitions.voronoi(topology, n_parts, seed=seed)
    tree = SpanningTree.bfs(topology, draw(st.integers(0, topology.n - 1)))
    return topology, tree, partition


@given(instances())
def test_full_ancestor_always_one_block(instance):
    _topology, tree, partition = instance
    shortcut = full_ancestor_shortcut(tree, partition)
    assert quality.block_parameter(shortcut) == 1


@given(instances(), st.integers(0, 12))
def test_greedy_congestion_never_exceeds_cap(instance, cap):
    _topology, tree, partition = instance
    shortcut, _unusable = greedy_capped_shortcut(tree, partition, cap)
    assert quality.shortcut_congestion(shortcut) <= cap


@given(instances(), st.integers(0, 12))
def test_greedy_unusable_edges_unassigned(instance, cap):
    _topology, tree, partition = instance
    shortcut, unusable = greedy_capped_shortcut(tree, partition, cap)
    for edge in unusable:
        assert edge not in shortcut.edge_map


@given(instances(), st.integers(1, 12))
def test_lemma1_dilation_bound_universal(instance, cap):
    topology, tree, partition = instance
    shortcut, _ = greedy_capped_shortcut(tree, partition, cap)
    report = quality.measure(shortcut, topology, with_dilation=True)
    assert report.dilation <= report.lemma1_dilation_bound


@given(instances(), st.integers(0, 12))
def test_blocks_partition_the_part(instance, cap):
    """Every part member appears in exactly one block component."""
    _topology, tree, partition = instance
    shortcut, _ = greedy_capped_shortcut(tree, partition, cap)
    for i in range(partition.size):
        blocks = quality.block_components(shortcut, i)
        members = partition.members(i)
        seen = set()
        for block in blocks:
            inner = block.nodes & members
            assert not (inner & seen)
            seen |= inner
        assert seen == members


@given(instances(), st.integers(0, 12))
def test_definition1_congestion_at_most_one_above_shortcut(instance, cap):
    topology, tree, partition = instance
    shortcut, _ = greedy_capped_shortcut(tree, partition, cap)
    assert (
        quality.shortcut_congestion(shortcut)
        <= quality.congestion(shortcut, topology)
        <= quality.shortcut_congestion(shortcut) + 1
    )


@given(instances())
def test_certified_points_are_achievable(instance):
    from repro.core.existence import certify_frontier

    _topology, tree, partition = instance
    for point in certify_frontier(tree, partition, caps=[1, 4]):
        shortcut, _ = greedy_capped_shortcut(tree, partition, point.cap)
        assert quality.shortcut_congestion(shortcut) <= point.congestion
        assert quality.block_parameter(shortcut) <= point.block
