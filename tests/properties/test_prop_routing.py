"""Property-based tests for Lemma 2 routing and the simulator."""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.core.tree_routing import (
    broadcast,
    convergecast,
    make_task,
    task_edge_congestion,
)
from repro.graphs import generators
from repro.graphs.spanning_trees import SpanningTree

settings.register_profile(
    "repro-routing",
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro-routing")


@st.composite
def routing_instances(draw):
    side = draw(st.integers(3, 6))
    topology = generators.grid(side, side)
    tree = SpanningTree.bfs(topology, draw(st.integers(0, topology.n - 1)))
    n_tasks = draw(st.integers(1, 20))
    leaves = draw(
        st.lists(
            st.integers(0, topology.n - 1), min_size=n_tasks, max_size=n_tasks
        )
    )
    tasks = [
        make_task(tree, tid, {v} | set(tree.ancestors(v)))
        for tid, v in enumerate(leaves)
    ]
    return topology, tree, tasks


@given(routing_instances())
def test_convergecast_min_matches_oracle(instance):
    topology, tree, tasks = instance
    values = {t.key: {v: v * 3 + 1 for v in t.nodes} for t in tasks}
    results, _run = convergecast(topology, tree, tasks, values, "min")
    for t in tasks:
        assert results[t.key] == min(v * 3 + 1 for v in t.nodes)


@given(routing_instances())
def test_convergecast_sum_matches_oracle(instance):
    topology, tree, tasks = instance
    values = {t.key: {v: 1 for v in t.nodes} for t in tasks}
    results, _run = convergecast(topology, tree, tasks, values, "sum")
    for t in tasks:
        assert results[t.key] == len(t.nodes)


@given(routing_instances())
def test_lemma2_round_bound(instance):
    topology, tree, tasks = instance
    c = task_edge_congestion(tree, tasks)
    values = {t.key: {v: v for v in t.nodes} for t in tasks}
    _results, run = convergecast(topology, tree, tasks, values, "min")
    assert run.rounds <= tree.height + c + 1


@given(routing_instances())
def test_broadcast_reaches_all_members(instance):
    topology, tree, tasks = instance
    payload = {t.key: 7_000 + t.tid for t in tasks}
    delivered, run = broadcast(topology, tree, tasks, payload)
    c = task_edge_congestion(tree, tasks)
    assert run.rounds <= tree.height + c + 1
    for t in tasks:
        assert set(delivered[t.key]) == set(t.nodes)
        assert set(delivered[t.key].values()) == {7_000 + t.tid}
