"""Property-based differential tests of the quality kernels.

Random topologies, random BFS roots, random partitions, and random
tree-edge subsets as shortcut subgraphs: on every draw the fast
kernels of :mod:`repro.core.quality_fast` must agree bit-for-bit with
the reference definitions in :mod:`repro.core.quality`, including the
disconnected-dilation error path.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.core import quality, quality_fast
from repro.core.shortcut import TreeRestrictedShortcut
from repro.errors import ShortcutError
from repro.graphs import generators, partitions
from repro.graphs.csr import tree_arrays
from repro.graphs.spanning_trees import SpanningTree

settings.register_profile(
    "repro-quality",
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro-quality")


@st.composite
def instances(draw):
    """A (topology, tree, partition, shortcut) draw."""
    kind = draw(st.sampled_from(["grid", "cycle", "er", "ktree"]))
    if kind == "grid":
        topology = generators.grid(draw(st.integers(2, 6)), draw(st.integers(2, 6)))
    elif kind == "cycle":
        topology = generators.cycle(draw(st.integers(3, 30)))
    elif kind == "ktree":
        topology = generators.k_tree(draw(st.integers(6, 30)), 2, seed=draw(st.integers(0, 50)))
    else:
        topology = generators.erdos_renyi_connected(
            draw(st.integers(4, 30)), 0.2, seed=draw(st.integers(0, 100))
        )
    root = draw(st.integers(0, topology.n - 1))
    tree = SpanningTree.bfs(topology, root)
    n_parts = draw(st.integers(0, max(1, topology.n // 2)))
    if n_parts == 0:
        partition = partitions.Partition(topology.n, [])
    else:
        partition = partitions.voronoi(topology, n_parts, seed=draw(st.integers(0, 20)))
    tree_edges = sorted(tree.edges)
    subgraphs = []
    for _ in range(partition.size):
        subset = draw(
            st.lists(st.sampled_from(tree_edges), max_size=len(tree_edges))
        ) if tree_edges else []
        subgraphs.append(subset)
    shortcut = TreeRestrictedShortcut(tree, partition, subgraphs)
    return topology, tree, partition, shortcut


@given(instances())
def test_scalar_measures_agree(drawn):
    topology, _tree, _partition, shortcut = drawn
    assert quality_fast.block_counts(shortcut) == quality.block_counts(shortcut)
    assert quality_fast.block_parameter(shortcut) == quality.block_parameter(shortcut)
    assert quality_fast.shortcut_congestion(shortcut) == quality.shortcut_congestion(
        shortcut
    )
    assert quality_fast.congestion(shortcut, topology) == quality.congestion(
        shortcut, topology
    )


@given(instances())
def test_block_components_agree(drawn):
    _topology, _tree, partition, shortcut = drawn
    for index in range(partition.size):
        assert quality_fast.block_components(shortcut, index) == (
            quality.block_components(shortcut, index)
        )


@given(instances())
def test_dilation_agrees_including_errors(drawn):
    topology, _tree, _partition, shortcut = drawn
    try:
        reference = quality.dilation(shortcut, topology)
    except ShortcutError:
        with pytest.raises(ShortcutError):
            quality_fast.dilation(shortcut, topology)
        return
    assert quality_fast.dilation(shortcut, topology) == reference
    report_ref = quality.measure(shortcut, topology, kernel="reference")
    report_fast = quality.measure(shortcut, topology, kernel="fast")
    assert report_fast == report_ref


@given(instances())
def test_per_part_dilation_agrees(drawn):
    topology, _tree, partition, shortcut = drawn
    for index in range(partition.size):
        try:
            reference = quality.dilation(shortcut, topology, index)
        except ShortcutError:
            with pytest.raises(ShortcutError):
                quality_fast.dilation(shortcut, topology, index)
            continue
        assert quality_fast.dilation(shortcut, topology, index) == reference


@given(instances())
def test_tree_arrays_consistent(drawn):
    """Euler-tour arrays agree with the SpanningTree accessors."""
    _topology, tree, _partition, _shortcut = drawn
    arrays = tree_arrays(tree)
    assert sorted(arrays.preorder) == list(range(tree.n))
    for v in range(tree.n):
        parent = tree.parent(v)
        assert arrays.parent[v] == (-1 if parent is None else parent)
        assert arrays.depth[v] == tree.depth(v)
        ancestors = set(tree.ancestors(v, include_self=True))
        for u in range(tree.n):
            assert arrays.is_ancestor(u, v) == (u in ancestors)
        assert set(arrays.subtree(v)) == {
            w for w in range(tree.n) if arrays.is_ancestor(v, w)
        }
