"""Tests for the process-parallel experiment harness."""

import os

import pytest

from repro.analysis.parallel import (
    JOBS_ENV,
    chunk_seeds,
    chunk_tasks,
    parallel_map,
    parallel_map_chunked,
    resolve_jobs,
    task_seed,
)


def _square(x):
    return x * x


def _flaky(x):
    if x == 3:
        raise ValueError("task 3 exploded")
    return x


@pytest.fixture
def jobs_env(monkeypatch):
    def set_env(value):
        if value is None:
            monkeypatch.delenv(JOBS_ENV, raising=False)
        else:
            monkeypatch.setenv(JOBS_ENV, value)

    return set_env


def test_resolve_jobs_default_is_serial(jobs_env):
    jobs_env(None)
    assert resolve_jobs() == 1


def test_resolve_jobs_env_values(jobs_env):
    jobs_env("4")
    assert resolve_jobs() == 4
    jobs_env("auto")
    assert resolve_jobs() == (os.cpu_count() or 1)
    jobs_env("0")
    assert resolve_jobs() == (os.cpu_count() or 1)
    jobs_env("many")
    with pytest.raises(ValueError):
        resolve_jobs()


def test_resolve_jobs_argument_overrides_env(jobs_env):
    jobs_env("7")
    assert resolve_jobs(2) == 2
    assert resolve_jobs(0) == (os.cpu_count() or 1)


def test_task_seed_is_deterministic_and_spread():
    seeds = [task_seed(42, i) for i in range(64)]
    assert seeds == [task_seed(42, i) for i in range(64)]
    assert len(set(seeds)) == len(seeds)
    assert task_seed(42, 0) != task_seed(43, 0)


def test_parallel_map_serial_matches_map():
    tasks = list(range(10))
    assert parallel_map(_square, tasks, jobs=1) == [x * x for x in tasks]


def test_parallel_map_preserves_order_with_workers():
    tasks = list(range(12))
    assert parallel_map(_square, tasks, jobs=2) == [x * x for x in tasks]


def test_parallel_map_empty():
    assert parallel_map(_square, [], jobs=4) == []


def test_parallel_map_propagates_task_errors():
    with pytest.raises(ValueError):
        parallel_map(_flaky, range(5), jobs=1)
    with pytest.raises(ValueError):
        parallel_map(_flaky, range(5), jobs=2)


def _crash_once(task):
    marker, x = task
    if x == 2 and not os.path.exists(marker):
        with open(marker, "w") as handle:
            handle.write("crashed")
        os._exit(1)
    return x * x


def test_parallel_map_survives_a_worker_crash(tmp_path):
    # Task 2 hard-kills its worker on first sight (poisoning the whole
    # pool), then behaves; the retry pool must finish every task.
    marker = str(tmp_path / "crashed-once")
    tasks = [(marker, x) for x in range(6)]
    with pytest.warns(RuntimeWarning, match="worker process died"):
        results = parallel_map(_crash_once, tasks, jobs=2)
    assert results == [x * x for x in range(6)]


def _crash_in_workers(task):
    parent_pid, x = task
    if x == 1 and os.getpid() != parent_pid:
        os._exit(1)
    return x + 10


def test_parallel_map_falls_back_to_serial_after_repeated_crashes():
    # Task 1 kills any worker it lands in, so both pool attempts break;
    # the serial fallback runs it in the parent, where it behaves.
    tasks = [(os.getpid(), x) for x in range(4)]
    with pytest.warns(RuntimeWarning, match="serially in the parent"):
        results = parallel_map(_crash_in_workers, tasks, jobs=2)
    assert results == [x + 10 for x in range(4)]


def _seeded_chunk(start, items):
    # The global-index seeding contract: item k of the chunk draws
    # task_seed(base, start + k), never a chunk-local stream.
    seeds = chunk_seeds(11, start, len(items))
    return [x * 100 + seed % 89 for x, seed in zip(items, seeds)]


def test_parallel_map_chunked_matches_per_task_seeding():
    tasks = list(range(17))
    expected = [x * 100 + task_seed(11, i) % 89 for i, x in enumerate(tasks)]
    for chunk_size in (1, 4, 17, 30):
        for jobs in (1, 2):
            assert (
                parallel_map_chunked(
                    _seeded_chunk, tasks, chunk_size=chunk_size, jobs=jobs
                )
                == expected
            )


def test_parallel_map_chunked_respects_jobs_env(jobs_env):
    jobs_env("2")
    tasks = list(range(9))
    expected = [x * 100 + task_seed(11, i) % 89 for i, x in enumerate(tasks)]
    assert parallel_map_chunked(_seeded_chunk, tasks, chunk_size=4) == expected


def _short_chunk(start, items):
    return [0] * (len(items) - 1)


def test_parallel_map_chunked_rejects_wrong_chunk_lengths():
    with pytest.raises(ValueError, match="returned 3 results for 4 tasks"):
        parallel_map_chunked(_short_chunk, range(4), chunk_size=4, jobs=1)


def test_chunk_tasks_shapes():
    assert chunk_tasks(range(5), 2) == [(0, [0, 1]), (2, [2, 3]), (4, [4])]
    assert chunk_tasks([], 3) == []
    with pytest.raises(ValueError):
        chunk_tasks(range(2), 0)
