"""Tests for the table renderer."""

import pytest

from repro.analysis.tables import Table


def test_render_alignment():
    table = Table("demo", ["name", "value"])
    table.add_row("a", 1)
    table.add_row("longer-name", 23456)
    text = table.render()
    lines = text.splitlines()
    assert lines[0] == "demo"
    assert "name" in lines[1]
    assert all(len(line) == len(lines[1]) for line in lines[2:])


def test_floats_formatted():
    table = Table("t", ["x"])
    table.add_row(0.123456)
    assert "0.12" in table.render()


def test_wrong_cell_count_rejected():
    table = Table("t", ["a", "b"])
    with pytest.raises(ValueError):
        table.add_row(1)


def test_str_equals_render():
    table = Table("t", ["a"])
    table.add_row("x")
    assert str(table) == table.render()


def test_bools_render():
    table = Table("t", ["ok"])
    table.add_row(True)
    assert "True" in table.render()
