"""Smoke tests for the experiment runners (full runs live in benchmarks/)."""

from repro.analysis.experiments import ALL_EXPERIMENTS, run_e01, run_e05


def test_registry_complete():
    assert set(ALL_EXPERIMENTS) == {f"E{i}" for i in range(1, 24)}


def test_e01_bounds_hold():
    result = run_e01("small")
    assert all(ratio <= 1.0 for ratio in result.data["ratios"])
    assert result.table.rows


def test_e05_guarantees_hold():
    result = run_e05("small")
    assert result.data["all_ok"]


def test_render_contains_claim():
    result = run_e01("small")
    text = result.render()
    assert "E1" in text and "Lemma 1" in text
