"""Tests for the content-addressed instance cache."""

import pytest

from repro.analysis.experiments import instance_families, standard_instance_specs
from repro.analysis.instances import (
    InstanceSpec,
    build_topology,
    clear_instance_cache,
    hydrate,
    instance_cache_info,
    reference_instance,
)
from repro.analysis.parallel import parallel_map
from repro.errors import ReproError
from repro.graphs import generators, partitions
from repro.graphs.csr import tree_arrays
from repro.graphs.spanning_trees import SpanningTree


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_instance_cache()
    yield
    clear_instance_cache()


GRID_SPEC = InstanceSpec("grid", (6, 6), partition=("voronoi", 6, 3))


def test_hydrate_builds_expected_structures():
    instance = hydrate(GRID_SPEC)
    expected_topology = generators.grid(6, 6)
    expected_partition = partitions.voronoi(expected_topology, 6, 3)
    expected_tree = SpanningTree.bfs(expected_topology, 0)
    assert instance.topology.edges == expected_topology.edges
    assert instance.partition.labels == expected_partition.labels
    assert [instance.tree.parent(v) for v in range(36)] == [
        expected_tree.parent(v) for v in range(36)
    ]
    # The hydrated tree arrives with its TreeArrays pre-cached.
    assert "arrays" in instance.tree._kernels
    assert tree_arrays(instance.tree) is instance.tree._kernels["arrays"]


def test_hydrate_is_content_addressed():
    first = hydrate(GRID_SPEC)
    # A structurally equal spec must hit the cache (identity, not copy).
    again = hydrate(InstanceSpec("grid", (6, 6), partition=("voronoi", 6, 3)))
    assert again is first
    other = hydrate(InstanceSpec("grid", (6, 6), partition=("voronoi", 6, 4)))
    assert other is not first


def test_specs_sharing_topology_share_the_object():
    a = hydrate(InstanceSpec("grid", (6, 6), partition=("voronoi", 6, 3)))
    b = hydrate(InstanceSpec("grid", (6, 6), partition=("rows", 6, 6)))
    assert a.topology is b.topology
    assert a.tree is b.tree
    info = instance_cache_info()
    assert info["topologies"] == 1
    assert info["trees"] == 1
    assert info["instances"] == 2


def test_weighted_spec_differs_from_unweighted():
    plain = build_topology(InstanceSpec("grid", (5, 5)))
    heavy = build_topology(InstanceSpec("grid", (5, 5), weights=("unique", 7)))
    assert plain is not heavy
    assert not plain.is_weighted
    assert heavy.is_weighted


def test_clear_instance_cache():
    hydrate(GRID_SPEC)
    assert instance_cache_info()["instances"] == 1
    clear_instance_cache()
    info = instance_cache_info()
    assert info["topologies"] == info["trees"] == info["instances"] == 0
    assert (
        info["topology_evictions"]
        == info["tree_evictions"]
        == info["instance_evictions"]
        == 0
    )


def test_instance_cache_is_lru_bounded(monkeypatch):
    from repro.analysis import instances as module

    monkeypatch.setattr(module._INSTANCE_CACHE, "max_entries", 2)
    specs = [
        InstanceSpec("grid", (5, 5), partition=("voronoi", 5, seed))
        for seed in range(3)
    ]
    first = hydrate(specs[0])
    hydrate(specs[1])
    hydrate(specs[2])  # evicts specs[0], the least recently used
    info = instance_cache_info()
    assert info["instances"] == 2
    assert info["instance_evictions"] == 1
    # The evicted spec rebuilds a fresh Instance (same content, new
    # object); the survivors stay identity-cached.
    assert hydrate(specs[2]) is hydrate(specs[2])
    assert hydrate(specs[0]) is not first


def test_instance_cache_hits_refresh_recency(monkeypatch):
    from repro.analysis import instances as module

    monkeypatch.setattr(module._INSTANCE_CACHE, "max_entries", 2)
    specs = [
        InstanceSpec("grid", (5, 5), partition=("voronoi", 5, seed))
        for seed in range(3)
    ]
    first = hydrate(specs[0])
    hydrate(specs[1])
    assert hydrate(specs[0]) is first  # refreshes specs[0]
    hydrate(specs[2])  # now evicts specs[1] instead
    assert hydrate(specs[0]) is first
    assert instance_cache_info()["instance_evictions"] == 1


def test_tree_root_respected():
    spec = InstanceSpec("hub", (32, 8), tree_root=32)
    instance = hydrate(spec)
    assert instance.tree.root == 32
    assert instance.partition is None


def test_unknown_names_raise():
    with pytest.raises(ReproError):
        hydrate(InstanceSpec("nonsense", (3,)))
    with pytest.raises(ReproError):
        hydrate(InstanceSpec("grid", (4, 4), partition=("nonsense",)))
    with pytest.raises(ReproError):
        hydrate(InstanceSpec("grid", (4, 4), weights=("nonsense", 1)))


def test_reference_instance_matches_hydrate():
    for name, spec in instance_families("small"):
        fast = hydrate(spec)
        reference = reference_instance(spec)
        assert fast.topology.edges == reference.topology.edges, name
        assert fast.partition.labels == reference.partition.labels, name
        n = fast.topology.n
        assert [fast.tree.parent(v) for v in range(n)] == [
            reference.tree.parent(v) for v in range(n)
        ], name
        if reference.topology.is_weighted:
            assert all(
                fast.topology.weight(u, v) == reference.topology.weight(u, v)
                for u, v in reference.topology.edges
            ), name


def test_standard_pool_round_trips_through_specs():
    # Skip the delaunay entry when the geometry extra is missing.
    for name, spec in standard_instance_specs("small"):
        if spec.family == "delaunay" and not generators.geometry_available():
            continue
        instance = hydrate(spec)
        assert instance.topology.n > 0, name
        assert instance.partition.size >= 1, name


def _hydrate_task(task):
    spec, salt = task
    instance = hydrate(spec)
    return (instance.topology.m, instance.partition.size, salt)


def test_specs_hydrate_inside_worker_processes():
    tasks = [(GRID_SPEC, i) for i in range(6)]
    serial = parallel_map(_hydrate_task, tasks, jobs=1)
    parallel = parallel_map(_hydrate_task, tasks, jobs=2)
    assert parallel == serial
