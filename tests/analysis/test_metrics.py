"""Tests for measurement helpers."""

import math

import pytest

from repro.analysis.metrics import (
    bound_ratio,
    fraction,
    geometric_mean,
    loglog_slope,
)


def test_bound_ratio_simple():
    assert bound_ratio(5, 10) == 0.5
    assert bound_ratio(0, 10) == 0


def test_bound_ratio_zero_bound():
    assert bound_ratio(3, 0) == math.inf
    assert bound_ratio(0, 0) == 0


def test_loglog_slope_linear():
    xs = [10, 20, 40, 80]
    ys = [3 * x for x in xs]
    assert abs(loglog_slope(xs, ys) - 1.0) < 1e-9


def test_loglog_slope_sqrt():
    xs = [16, 64, 256, 1024]
    ys = [math.sqrt(x) for x in xs]
    assert abs(loglog_slope(xs, ys) - 0.5) < 1e-9


def test_loglog_slope_constant():
    assert abs(loglog_slope([2, 4, 8], [7, 7, 7])) < 1e-9


def test_loglog_slope_validation():
    with pytest.raises(ValueError):
        loglog_slope([1], [1])
    with pytest.raises(ValueError):
        loglog_slope([3, 3], [1, 2])


def test_geometric_mean():
    assert abs(geometric_mean([2, 8]) - 4.0) < 1e-9
    assert geometric_mean([0, 5]) == 0.0
    with pytest.raises(ValueError):
        geometric_mean([])


def test_fraction():
    assert fraction(3, 4) == 0.75
    assert fraction(0, 0) == 0.0
