"""Tests for the EXPERIMENTS.md report generator."""

import repro.analysis.report as report_module
from repro.analysis.experiments import run_e01, run_e05


def test_generate_subset(monkeypatch, tmp_path):
    monkeypatch.setattr(
        report_module, "ALL_EXPERIMENTS", {"E1": run_e01, "E5": run_e05}
    )
    text = report_module.generate("small")
    assert "E1" in text and "E5" in text
    assert "Lemma 1" in text
    assert "paper claims vs. measurements" in text


def test_main_writes_file(monkeypatch, tmp_path):
    monkeypatch.setattr(report_module, "ALL_EXPERIMENTS", {"E1": run_e01})
    out = tmp_path / "EXP.md"
    code = report_module.main(["report", "small", str(out)])
    assert code == 0
    assert out.exists()
    assert "E1" in out.read_text()
